//! The heap facade: local heaps, the global heap, and the object-level
//! mechanism the collector is built from.
//!
//! [`Heap`] owns every memory region of the simulated runtime. It provides
//! *mechanism* only — allocate an object, read or write a field, evacuate an
//! object to another space, acquire a global-heap chunk. The collection
//! *policy* (when to collect, the Cheney loops, the per-node chunk lists of
//! the global collection) lives in the `mgc-core` crate.

use crate::addr::{Addr, Word, WORD_BYTES};
use crate::chunk::{ChunkId, ChunkState};
use crate::descriptor::{Descriptor, DescriptorId, DescriptorTable};
use crate::error::HeapError;
use crate::global::GlobalHeap;
use crate::header::{Header, HeaderSlot, ObjectKind};
use crate::local::{LocalHeap, LocalRegion};
use crate::space::{AddressSpace, RegionOwner};
use mgc_numa::{AllocPolicy, NodeId, PageMap, PagePlacer, PlacementPolicy};
use serde::{Deserialize, Serialize};

/// Configuration of the heap geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapConfig {
    /// Size of a global-heap chunk in bytes. The paper uses large chunks on
    /// a 128 GB machine; the default here is scaled down to match the scaled
    /// workloads.
    pub chunk_size_bytes: usize,
    /// Size of each vproc's local heap in bytes. The paper sizes local heaps
    /// to fit the node's L3 cache (§3.1).
    pub local_heap_bytes: usize,
    /// Bytes of global-heap address band reserved per NUMA node in the
    /// threaded backend (a power of two). The default,
    /// [`NODE_SPAN_BYTES`](crate::NODE_SPAN_BYTES), is 256 GiB of *virtual*
    /// span; host-scale runs may derive it from probed node memory instead.
    pub node_span_bytes: u64,
    /// Physical placement policy for local heaps and global chunks (§4.3).
    pub policy: AllocPolicy,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            chunk_size_bytes: 256 * 1024,
            local_heap_bytes: 512 * 1024,
            node_span_bytes: crate::shared::NODE_SPAN_BYTES,
            policy: AllocPolicy::Local,
        }
    }
}

impl HeapConfig {
    /// A small configuration convenient for unit tests: 4 KiB chunks and
    /// 16 KiB local heaps.
    pub fn small_for_tests() -> Self {
        HeapConfig {
            chunk_size_bytes: 4 * 1024,
            local_heap_bytes: 16 * 1024,
            node_span_bytes: crate::shared::NODE_SPAN_BYTES,
            policy: AllocPolicy::Local,
        }
    }

    /// The validated geometry view of this configuration.
    pub fn geometry(&self) -> HeapGeometry {
        HeapGeometry {
            chunk_size_bytes: self.chunk_size_bytes,
            local_heap_bytes: self.local_heap_bytes,
            node_span_bytes: self.node_span_bytes,
        }
    }
}

/// Smallest accepted global-heap chunk, in bytes.
pub const MIN_CHUNK_BYTES: usize = 1024;
/// Smallest accepted per-vproc local heap, in bytes.
pub const MIN_LOCAL_HEAP_BYTES: usize = 4096;

/// The geometry knobs of a heap, validated as a unit.
///
/// Construct via [`HeapConfig::geometry`] and call
/// [`HeapGeometry::validate`] before building heaps from untrusted knobs
/// (CLI flags, environment overrides, probed host memory) — the heap
/// constructors `assert!` the same bounds, but this path reports a typed
/// violation instead of panicking mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapGeometry {
    /// Size of a global-heap chunk in bytes.
    pub chunk_size_bytes: usize,
    /// Size of each vproc's local heap in bytes.
    pub local_heap_bytes: usize,
    /// Bytes of global-heap address band per NUMA node.
    pub node_span_bytes: u64,
}

/// One violated heap-geometry bound (see [`HeapGeometry::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryViolation {
    /// A knob is below its minimum.
    BelowMinimum {
        /// The violating [`HeapConfig`] field.
        field: &'static str,
        /// The rejected value.
        bytes: u64,
        /// The smallest accepted value.
        min: u64,
    },
    /// The node span is not a power of two (the `addr → node` shift
    /// arithmetic requires one).
    NotPowerOfTwo {
        /// The violating [`HeapConfig`] field.
        field: &'static str,
        /// The rejected value.
        bytes: u64,
    },
    /// The node span exceeds the largest supported band.
    AboveMaximum {
        /// The violating [`HeapConfig`] field.
        field: &'static str,
        /// The rejected value.
        bytes: u64,
        /// The largest accepted value.
        max: u64,
    },
}

impl HeapGeometry {
    /// Checks every geometry bound, reporting the first violation.
    ///
    /// # Errors
    ///
    /// Returns the violated bound: chunk and local-heap minimums, and for
    /// the node span — power-of-two shape, room for at least one chunk, and
    /// the [`MAX_NODE_SPAN_SHIFT`](crate::MAX_NODE_SPAN_SHIFT) ceiling that
    /// keeps band arithmetic inside `u64`.
    pub fn validate(&self) -> Result<(), GeometryViolation> {
        if self.chunk_size_bytes < MIN_CHUNK_BYTES {
            return Err(GeometryViolation::BelowMinimum {
                field: "chunk_size_bytes",
                bytes: self.chunk_size_bytes as u64,
                min: MIN_CHUNK_BYTES as u64,
            });
        }
        if self.local_heap_bytes < MIN_LOCAL_HEAP_BYTES {
            return Err(GeometryViolation::BelowMinimum {
                field: "local_heap_bytes",
                bytes: self.local_heap_bytes as u64,
                min: MIN_LOCAL_HEAP_BYTES as u64,
            });
        }
        if !self.node_span_bytes.is_power_of_two() {
            return Err(GeometryViolation::NotPowerOfTwo {
                field: "node_span_bytes",
                bytes: self.node_span_bytes,
            });
        }
        if self.node_span_bytes > 1 << crate::shared::MAX_NODE_SPAN_SHIFT {
            return Err(GeometryViolation::AboveMaximum {
                field: "node_span_bytes",
                bytes: self.node_span_bytes,
                max: 1 << crate::shared::MAX_NODE_SPAN_SHIFT,
            });
        }
        if self.node_span_bytes < self.chunk_size_bytes as u64 {
            return Err(GeometryViolation::BelowMinimum {
                field: "node_span_bytes",
                bytes: self.node_span_bytes,
                min: (self.chunk_size_bytes as u64).next_power_of_two(),
            });
        }
        Ok(())
    }
}

/// Which heap space an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Space {
    /// The nursery of a vproc's local heap.
    LocalNursery {
        /// Owning vproc.
        vproc: usize,
    },
    /// The young-data area of a vproc's local heap.
    LocalYoung {
        /// Owning vproc.
        vproc: usize,
    },
    /// The old-data area of a vproc's local heap.
    LocalOld {
        /// Owning vproc.
        vproc: usize,
    },
    /// Free space inside a vproc's local heap (no live object should be
    /// here; reported for diagnostics).
    LocalFree {
        /// Owning vproc.
        vproc: usize,
    },
    /// A global-heap chunk.
    Global {
        /// The chunk.
        chunk: ChunkId,
    },
    /// Outside every mapped region.
    Unmapped,
}

impl Space {
    /// True for any of the local-heap spaces.
    pub fn is_local(self) -> bool {
        matches!(
            self,
            Space::LocalNursery { .. }
                | Space::LocalYoung { .. }
                | Space::LocalOld { .. }
                | Space::LocalFree { .. }
        )
    }

    /// True for the global heap.
    pub fn is_global(self) -> bool {
        matches!(self, Space::Global { .. })
    }

    /// The owning vproc, for local spaces.
    pub fn vproc(self) -> Option<usize> {
        match self {
            Space::LocalNursery { vproc }
            | Space::LocalYoung { vproc }
            | Space::LocalOld { vproc }
            | Space::LocalFree { vproc } => Some(vproc),
            _ => None,
        }
    }
}

/// Target space for an object evacuation performed by the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvacTarget {
    /// Copy to the end of the vproc's old-data area (minor collection).
    OldArea {
        /// The vproc whose local heap receives the copy.
        vproc: usize,
    },
    /// Copy to the vproc's current global-heap chunk (major collection and
    /// promotion).
    GlobalCurrent {
        /// The vproc whose current chunk receives the copy.
        vproc: usize,
    },
    /// Copy into a specific chunk (global collection to-space).
    Chunk(ChunkId),
}

/// Heap-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapStats {
    /// Number of global-chunk acquisitions (each is a synchronisation point
    /// in the real runtime, §3.3).
    pub chunk_acquisitions: u64,
    /// Words copied by evacuations.
    pub evacuated_words: u64,
}

/// The complete simulated heap.
#[derive(Debug)]
pub struct Heap {
    config: HeapConfig,
    num_nodes: usize,
    vproc_nodes: Vec<NodeId>,
    placer: PagePlacer,
    page_map: PageMap,
    descriptors: DescriptorTable,
    space: AddressSpace,
    locals: Vec<LocalHeap>,
    global: GlobalHeap,
    current_chunk: Vec<Option<ChunkId>>,
    /// Which node's free list promotion chunks are preferred from (the
    /// threaded backend's [`PlacementPolicy`], mirrored here so the
    /// simulated backend covers the same scenario axis).
    placement: PlacementPolicy,
    /// Round-robin cursor for [`PlacementPolicy::Interleave`].
    interleave_cursor: usize,
    /// Per-vproc promotion target: the node the consumer of the vproc's
    /// next promotion lives on. Defaults to the vproc's home node; the
    /// runtime retargets it at the thief's node around a steal handoff.
    promotion_target: Vec<NodeId>,
    /// Per-vproc *effective* static policy under
    /// [`PlacementPolicy::Adaptive`]: the runtime's controller resolves the
    /// adaptive mode to `NodeLocal` or `Interleave` before each promotion.
    /// Ignored for static heap-wide policies.
    effective_placement: Vec<PlacementPolicy>,
    stats: HeapStats,
}

impl Heap {
    /// Creates a heap for `vproc_nodes.len()` vprocs. `vproc_nodes[i]` is the
    /// NUMA node of the core that vproc `i` is pinned to; the placement
    /// policy decides where the backing pages actually land.
    ///
    /// # Panics
    ///
    /// Panics if `vproc_nodes` is empty, `num_nodes` is zero, or any home
    /// node is out of range.
    pub fn new(config: HeapConfig, vproc_nodes: &[NodeId], num_nodes: usize) -> Self {
        assert!(!vproc_nodes.is_empty(), "at least one vproc is required");
        assert!(num_nodes > 0, "at least one NUMA node is required");
        for node in vproc_nodes {
            assert!(
                node.index() < num_nodes,
                "vproc home node {node} out of range (machine has {num_nodes} nodes)"
            );
        }
        let chunk_words = (config.chunk_size_bytes / WORD_BYTES).max(64);
        let local_words_raw = (config.local_heap_bytes / WORD_BYTES).max(64);
        // Local heaps are mapped in whole blocks of the address space.
        let local_blocks = local_words_raw.div_ceil(chunk_words);
        let local_words = local_blocks * chunk_words;

        let placer = PagePlacer::new(config.policy, num_nodes);
        let mut page_map = PageMap::new();
        let mut space = AddressSpace::new(chunk_words);
        let mut locals = Vec::with_capacity(vproc_nodes.len());
        for (vproc, &home) in vproc_nodes.iter().enumerate() {
            let node = placer.place(home);
            let base = space.map(RegionOwner::Local { vproc }, local_blocks);
            page_map.place(base.raw(), local_words * WORD_BYTES, node);
            locals.push(LocalHeap::new(vproc, node, base, local_words));
        }
        let global = GlobalHeap::new(chunk_words, num_nodes);

        Heap {
            config,
            num_nodes,
            vproc_nodes: vproc_nodes.to_vec(),
            placer,
            page_map,
            descriptors: DescriptorTable::new(),
            space,
            locals,
            global,
            current_chunk: vec![None; vproc_nodes.len()],
            placement: PlacementPolicy::NodeLocal,
            interleave_cursor: 0,
            promotion_target: vproc_nodes.to_vec(),
            // Adaptive controllers cold-start in node-local mode.
            effective_placement: vec![PlacementPolicy::NodeLocal; vproc_nodes.len()],
            stats: HeapStats::default(),
        }
    }

    /// Sets the promotion-chunk placement policy (see [`PlacementPolicy`]).
    pub fn set_placement(&mut self, placement: PlacementPolicy) {
        self.placement = placement;
    }

    /// The promotion-chunk placement policy.
    pub fn placement(&self) -> PlacementPolicy {
        self.placement
    }

    /// Points `vproc`'s subsequent promotions at `node` (used around a steal
    /// handoff so the stolen graph lands on the thief's node under
    /// [`PlacementPolicy::NodeLocal`]).
    pub fn set_promotion_target(&mut self, vproc: usize, node: NodeId) {
        self.promotion_target[vproc] = node;
    }

    /// Restores `vproc`'s promotion target to its home node.
    pub fn reset_promotion_target(&mut self, vproc: usize) {
        self.promotion_target[vproc] = self.vproc_nodes[vproc];
    }

    /// The node `vproc`'s next promotion targets.
    pub fn promotion_target(&self, vproc: usize) -> NodeId {
        self.promotion_target[vproc]
    }

    /// The static policy `vproc`'s chunk acquisitions currently follow:
    /// the heap-wide policy, except under [`PlacementPolicy::Adaptive`],
    /// where it is the controller-resolved per-vproc mode.
    pub fn effective_placement(&self, vproc: usize) -> PlacementPolicy {
        match self.placement {
            PlacementPolicy::Adaptive => self.effective_placement[vproc],
            fixed => fixed,
        }
    }

    /// Resolves `vproc`'s effective policy under
    /// [`PlacementPolicy::Adaptive`] (no effect on static heap-wide
    /// policies). The runtime's adaptive controller calls this before each
    /// promotion.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `effective` is itself `Adaptive`.
    pub fn set_effective_placement(&mut self, vproc: usize, effective: PlacementPolicy) {
        debug_assert!(
            effective != PlacementPolicy::Adaptive,
            "the adaptive controller resolves to a concrete static policy"
        );
        self.effective_placement[vproc] = effective;
    }

    /// The heap configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Number of vprocs this heap serves.
    pub fn num_vprocs(&self) -> usize {
        self.locals.len()
    }

    /// Number of NUMA nodes in the machine.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The home node (core location) of a vproc.
    pub fn vproc_home_node(&self, vproc: usize) -> NodeId {
        self.vproc_nodes[vproc]
    }

    /// Heap-wide counters.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// The page map recording where every region physically lives.
    pub fn page_map(&self) -> &PageMap {
        &self.page_map
    }

    /// The descriptor table for mixed-type objects.
    pub fn descriptors(&self) -> &DescriptorTable {
        &self.descriptors
    }

    /// Registers a mixed-object descriptor and returns its ID.
    pub fn register_descriptor(&mut self, descriptor: Descriptor) -> DescriptorId {
        self.descriptors.register(descriptor)
    }

    /// Borrow a vproc's local heap.
    pub fn local(&self, vproc: usize) -> &LocalHeap {
        &self.locals[vproc]
    }

    /// Mutably borrow a vproc's local heap.
    pub fn local_mut(&mut self, vproc: usize) -> &mut LocalHeap {
        &mut self.locals[vproc]
    }

    /// Borrow the global heap.
    pub fn global(&self) -> &GlobalHeap {
        &self.global
    }

    /// Mutably borrow the global heap.
    pub fn global_mut(&mut self) -> &mut GlobalHeap {
        &mut self.global
    }

    /// The vproc's current global-heap chunk, if it has one.
    pub fn current_chunk(&self, vproc: usize) -> Option<ChunkId> {
        self.current_chunk[vproc]
    }

    // ------------------------------------------------------------------
    // Address resolution
    // ------------------------------------------------------------------

    /// Which space `addr` belongs to.
    pub fn space_of(&self, addr: Addr) -> Space {
        match self.space.owner_of(addr) {
            RegionOwner::Unmapped => Space::Unmapped,
            RegionOwner::Global { chunk } => Space::Global { chunk },
            RegionOwner::Local { vproc } => {
                let local = &self.locals[vproc];
                match local.region_of(addr) {
                    LocalRegion::Old => Space::LocalOld { vproc },
                    LocalRegion::Young => Space::LocalYoung { vproc },
                    LocalRegion::Nursery => Space::LocalNursery { vproc },
                    LocalRegion::Reserve | LocalRegion::NurseryFree => Space::LocalFree { vproc },
                }
            }
        }
    }

    /// True if `addr` lies in any local heap.
    pub fn is_local(&self, addr: Addr) -> bool {
        matches!(self.space.owner_of(addr), RegionOwner::Local { .. })
    }

    /// True if `addr` lies in the global heap.
    pub fn is_global(&self, addr: Addr) -> bool {
        matches!(self.space.owner_of(addr), RegionOwner::Global { .. })
    }

    /// The NUMA node whose memory backs `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unmapped.
    pub fn node_of(&self, addr: Addr) -> NodeId {
        match self.space.owner_of(addr) {
            RegionOwner::Local { vproc } => self.locals[vproc].node(),
            RegionOwner::Global { chunk } => self.global.chunk(chunk).node(),
            RegionOwner::Unmapped => panic!("{addr:?} is not mapped to any heap region"),
        }
    }

    // ------------------------------------------------------------------
    // Word and object access
    // ------------------------------------------------------------------

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unmapped.
    pub fn read_word(&self, addr: Addr) -> Word {
        match self.space.owner_of(addr) {
            RegionOwner::Local { vproc } => {
                let local = &self.locals[vproc];
                local.read(local.offset_of(addr))
            }
            RegionOwner::Global { chunk } => {
                let chunk = self.global.chunk(chunk);
                chunk.read(chunk.offset_of(addr))
            }
            RegionOwner::Unmapped => panic!("read from unmapped address {addr:?}"),
        }
    }

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unmapped.
    pub fn write_word(&mut self, addr: Addr, value: Word) {
        match self.space.owner_of(addr) {
            RegionOwner::Local { vproc } => {
                let local = &mut self.locals[vproc];
                let off = local.offset_of(addr);
                local.write(off, value);
            }
            RegionOwner::Global { chunk } => {
                let chunk = self.global.chunk_mut(chunk);
                let off = chunk.offset_of(addr);
                chunk.write(off, value);
            }
            RegionOwner::Unmapped => panic!("write to unmapped address {addr:?}"),
        }
    }

    /// Reads the header slot of the object at `obj` (the word below the
    /// payload): either a header or a forwarding pointer.
    pub fn header_slot(&self, obj: Addr) -> HeaderSlot {
        HeaderSlot::decode(self.read_word(obj.sub_words(1)))
    }

    /// Reads the header of the object at `obj`.
    ///
    /// # Panics
    ///
    /// Panics if the object has been forwarded; use [`Heap::forwarded_to`]
    /// first when that is possible.
    pub fn header_of(&self, obj: Addr) -> Header {
        self.header_slot(obj).expect_header()
    }

    /// If the object at `obj` has been moved, returns its new address.
    pub fn forwarded_to(&self, obj: Addr) -> Option<Addr> {
        self.header_slot(obj).forwarded_to()
    }

    /// Overwrites the object's header with a forwarding pointer to `target`.
    pub fn set_forward(&mut self, obj: Addr, target: Addr) {
        debug_assert!(!target.is_null());
        self.write_word(obj.sub_words(1), target.raw());
    }

    /// Reads payload field `index` of the object at `obj`.
    pub fn read_field(&self, obj: Addr, index: usize) -> Word {
        self.read_word(obj.add_words(index))
    }

    /// Writes payload field `index` of the object at `obj`.
    ///
    /// The mutator never calls this (the language is mutation-free); it is
    /// used by the collector to redirect pointer fields and by the runtime to
    /// initialise objects it builds by hand (channel buffers, proxies).
    pub fn write_field(&mut self, obj: Addr, index: usize, value: Word) {
        self.write_word(obj.add_words(index), value);
    }

    /// Reads the whole payload of the object at `obj`.
    pub fn payload(&self, obj: Addr) -> Vec<Word> {
        let header = self.header_of(obj);
        (0..header.len_words as usize)
            .map(|i| self.read_field(obj, i))
            .collect()
    }

    /// The payload indices of the pointer fields of an object with header
    /// `header`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::UnknownDescriptor`] if a mixed object's ID has no
    /// registered descriptor.
    pub fn pointer_field_indices(&self, header: Header) -> Result<Vec<usize>, HeapError> {
        match header.kind {
            ObjectKind::Raw => Ok(Vec::new()),
            ObjectKind::Vector => Ok((0..header.len_words as usize).collect()),
            ObjectKind::Mixed(id) => {
                let descriptor = self
                    .descriptors
                    .get(id)
                    .ok_or(HeapError::UnknownDescriptor { id })?;
                Ok(descriptor.pointer_offsets().collect())
            }
        }
    }

    /// The total size in bytes of the object at `obj`, including its header.
    pub fn object_bytes(&self, obj: Addr) -> usize {
        self.header_of(obj).total_bytes()
    }

    // ------------------------------------------------------------------
    // Mutator allocation (into the nursery)
    // ------------------------------------------------------------------

    /// Allocates a raw-data object in `vproc`'s nursery.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NurseryFull`] when a minor collection is needed.
    pub fn alloc_raw(&mut self, vproc: usize, payload: &[Word]) -> Result<Addr, HeapError> {
        let header = Header::new(ObjectKind::Raw, payload.len() as u64).encode();
        self.locals[vproc].alloc(header, payload)
    }

    /// Allocates a pointer-vector object in `vproc`'s nursery. Every element
    /// must be a valid object address or the null word.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NurseryFull`] when a minor collection is needed.
    pub fn alloc_vector(&mut self, vproc: usize, elements: &[Word]) -> Result<Addr, HeapError> {
        let header = Header::new(ObjectKind::Vector, elements.len() as u64).encode();
        self.locals[vproc].alloc(header, elements)
    }

    /// Allocates a mixed-type object in `vproc`'s nursery.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::UnknownDescriptor`] for an unregistered
    /// descriptor, [`HeapError::PayloadSizeMismatch`] if the payload does not
    /// match the descriptor's declared size, and [`HeapError::NurseryFull`]
    /// when a minor collection is needed.
    pub fn alloc_mixed(
        &mut self,
        vproc: usize,
        descriptor: DescriptorId,
        payload: &[Word],
    ) -> Result<Addr, HeapError> {
        let desc = self
            .descriptors
            .get(descriptor.id())
            .ok_or(HeapError::UnknownDescriptor {
                id: descriptor.id(),
            })?;
        if desc.size_words as usize != payload.len() {
            return Err(HeapError::PayloadSizeMismatch {
                expected: desc.size_words as usize,
                supplied: payload.len(),
            });
        }
        let header = Header::new(ObjectKind::Mixed(descriptor.id()), payload.len() as u64).encode();
        self.locals[vproc].alloc(header, payload)
    }

    // ------------------------------------------------------------------
    // Collector allocation (old area, global chunks)
    // ------------------------------------------------------------------

    /// Acquires a fresh current chunk for `vproc`, retiring the previous one
    /// (if any) to the [`ChunkState::Filled`] state. Returns the new chunk.
    ///
    /// This corresponds to the synchronisation point of §3.3: in the real
    /// runtime this takes a node-local or global lock; here we count it in
    /// [`HeapStats::chunk_acquisitions`] so the scheduler can charge for it.
    pub fn fresh_current_chunk(&mut self, vproc: usize) -> ChunkId {
        if let Some(old) = self.current_chunk[vproc] {
            self.global.chunk_mut(old).set_state(ChunkState::Filled);
        }
        // The placement policy picks the target node (consumer node under
        // `NodeLocal`, home node under `FirstTouch`, round-robin under
        // `Interleave`, whichever of those the controller resolved under
        // `Adaptive`); the page placer then resolves it exactly as it does
        // for any other region.
        let target = match self.effective_placement(vproc) {
            PlacementPolicy::NodeLocal | PlacementPolicy::Adaptive => self.promotion_target[vproc],
            PlacementPolicy::FirstTouch => self.vproc_nodes[vproc],
            PlacementPolicy::Interleave => {
                let node = NodeId::new((self.interleave_cursor % self.num_nodes) as u16);
                self.interleave_cursor += 1;
                node
            }
        };
        let preferred = self.placer.place(target);
        let id = self.global.acquire_chunk(preferred, &mut self.space);
        let base = self.global.chunk_base(id);
        let bytes = self.global.chunk_size_bytes();
        let node = self.global.chunk(id).node();
        self.page_map.place(base.raw(), bytes, node);
        self.global
            .chunk_mut(id)
            .set_state(ChunkState::Current { vproc });
        self.current_chunk[vproc] = Some(id);
        self.stats.chunk_acquisitions += 1;
        id
    }

    /// The node the next chunk acquisition is *bound* to, when the
    /// combination of placement policy and page policy pins one
    /// deterministically (`None` under `Interleave` placement, an
    /// interleaved page policy, or the affinity-off ablation — retiring
    /// chunks would only churn there).
    fn bound_chunk_node(&self, vproc: usize) -> Option<NodeId> {
        if !self.global.node_affinity() {
            return None;
        }
        let target = match self.effective_placement(vproc) {
            PlacementPolicy::NodeLocal | PlacementPolicy::Adaptive => self.promotion_target[vproc],
            PlacementPolicy::FirstTouch => self.vproc_nodes[vproc],
            PlacementPolicy::Interleave => return None,
        };
        match self.placer.policy() {
            AllocPolicy::Local | AllocPolicy::FirstTouch => Some(target),
            AllocPolicy::SocketZero => Some(NodeId::new(0)),
            AllocPolicy::Interleaved => None,
        }
    }

    /// Ensures `vproc` has a current chunk on the node the placement policy
    /// binds it to, acquiring (or replacing a wrong-node chunk with) a fresh
    /// one if necessary — the same retarget-on-mismatch rule the threaded
    /// `WorkerHeap` applies, so the backends' placement behaviour agrees.
    pub fn ensure_current_chunk(&mut self, vproc: usize) -> ChunkId {
        match self.current_chunk[vproc] {
            Some(id) => match self.bound_chunk_node(vproc) {
                Some(want) if self.global.chunk(id).node() != want => {
                    self.fresh_current_chunk(vproc)
                }
                _ => id,
            },
            None => self.fresh_current_chunk(vproc),
        }
    }

    /// Drops `vproc`'s claim on its current chunk, marking it filled.
    pub fn retire_current_chunk(&mut self, vproc: usize) {
        if let Some(id) = self.current_chunk[vproc].take() {
            self.global.chunk_mut(id).set_state(ChunkState::Filled);
        }
    }

    /// Allocates an object with an explicit header into `vproc`'s current
    /// global chunk, acquiring a fresh chunk transparently when the current
    /// one fills up.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::ObjectTooLarge`] if the object cannot fit in any
    /// chunk.
    pub fn alloc_in_global(
        &mut self,
        vproc: usize,
        header: Word,
        payload: &[Word],
    ) -> Result<Addr, HeapError> {
        let total = payload.len() + 1;
        if total > self.global.chunk_size_words() {
            return Err(HeapError::ObjectTooLarge {
                requested_words: total,
                max_words: self.global.chunk_size_words(),
            });
        }
        let chunk = self.ensure_current_chunk(vproc);
        match self.global.chunk_mut(chunk).alloc(header, payload) {
            Ok(addr) => Ok(addr),
            Err(HeapError::ChunkFull { .. }) => {
                let fresh = self.fresh_current_chunk(vproc);
                self.global.chunk_mut(fresh).alloc(header, payload)
            }
            Err(e) => Err(e),
        }
    }

    /// Allocates an object into a specific chunk (used by the global
    /// collection when filling to-space chunks).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::ChunkFull`] if the chunk has no room.
    pub fn alloc_in_chunk(
        &mut self,
        chunk: ChunkId,
        header: Word,
        payload: &[Word],
    ) -> Result<Addr, HeapError> {
        self.global.chunk_mut(chunk).alloc(header, payload)
    }

    // ------------------------------------------------------------------
    // Evacuation (the copying mechanism shared by all collections)
    // ------------------------------------------------------------------

    /// Copies the object at `obj` into `target`, installs a forwarding
    /// pointer in the original header slot, and returns the new address plus
    /// the number of bytes copied (header included).
    ///
    /// # Errors
    ///
    /// Propagates allocation errors from the target space.
    ///
    /// # Panics
    ///
    /// Panics if the object has already been forwarded.
    pub fn evacuate(&mut self, obj: Addr, target: EvacTarget) -> Result<(Addr, usize), HeapError> {
        let header = self.header_of(obj);
        let payload = self.payload(obj);
        let encoded = header.encode();
        let new_addr = match target {
            EvacTarget::OldArea { vproc } => self.locals[vproc].alloc_in_old(encoded, &payload)?,
            EvacTarget::GlobalCurrent { vproc } => {
                self.alloc_in_global(vproc, encoded, &payload)?
            }
            EvacTarget::Chunk(chunk) => self.alloc_in_chunk(chunk, encoded, &payload)?,
        };
        self.set_forward(obj, new_addr);
        // Preserve the original header in the first payload word of the dead
        // copy so linear heap walks can still compute the object's footprint
        // and skip over it (the payload itself is dead — every reader must
        // follow the forwarding pointer).
        if header.len_words >= 1 {
            self.write_field(obj, 0, encoded);
        }
        self.stats.evacuated_words += header.total_words() as u64;
        Ok((new_addr, header.total_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::i64_to_word;

    fn two_vproc_heap() -> Heap {
        Heap::new(
            HeapConfig::small_for_tests(),
            &[NodeId::new(0), NodeId::new(1)],
            2,
        )
    }

    #[test]
    fn construction_places_local_heaps_on_home_nodes() {
        let heap = two_vproc_heap();
        assert_eq!(heap.num_vprocs(), 2);
        assert_eq!(heap.local(0).node(), NodeId::new(0));
        assert_eq!(heap.local(1).node(), NodeId::new(1));
        assert_eq!(heap.vproc_home_node(1), NodeId::new(1));
        assert!(heap.page_map().mapped_pages() > 0);
    }

    #[test]
    fn geometry_validates_spans_and_minimums() {
        // The defaults and the test config are valid.
        assert_eq!(HeapConfig::default().geometry().validate(), Ok(()));
        assert_eq!(HeapConfig::small_for_tests().geometry().validate(), Ok(()));
        // Chunk and local-heap minimums are the classic bounds.
        let tiny_chunk = HeapConfig {
            chunk_size_bytes: 64,
            ..HeapConfig::small_for_tests()
        };
        assert_eq!(
            tiny_chunk.geometry().validate(),
            Err(GeometryViolation::BelowMinimum {
                field: "chunk_size_bytes",
                bytes: 64,
                min: MIN_CHUNK_BYTES as u64,
            })
        );
        // A non-power-of-two span breaks the addr→node shift.
        let crooked = HeapConfig {
            node_span_bytes: (1 << 30) + 512,
            ..HeapConfig::small_for_tests()
        };
        assert_eq!(
            crooked.geometry().validate(),
            Err(GeometryViolation::NotPowerOfTwo {
                field: "node_span_bytes",
                bytes: (1 << 30) + 512,
            })
        );
        // A span smaller than one chunk can never map anything.
        let sliver = HeapConfig {
            node_span_bytes: 1024,
            ..HeapConfig::small_for_tests()
        };
        assert_eq!(
            sliver.geometry().validate(),
            Err(GeometryViolation::BelowMinimum {
                field: "node_span_bytes",
                bytes: 1024,
                min: 4096,
            })
        );
        // The ceiling keeps band arithmetic inside u64 for any NodeId.
        let vast = HeapConfig {
            node_span_bytes: 1 << 50,
            ..HeapConfig::small_for_tests()
        };
        assert_eq!(
            vast.geometry().validate(),
            Err(GeometryViolation::AboveMaximum {
                field: "node_span_bytes",
                bytes: 1 << 50,
                max: 1 << crate::shared::MAX_NODE_SPAN_SHIFT,
            })
        );
    }

    #[test]
    fn socket_zero_policy_places_everything_on_node_zero() {
        let config = HeapConfig {
            policy: AllocPolicy::SocketZero,
            ..HeapConfig::small_for_tests()
        };
        let mut heap = Heap::new(config, &[NodeId::new(0), NodeId::new(1)], 2);
        assert_eq!(heap.local(1).node(), NodeId::new(0));
        let chunk = heap.fresh_current_chunk(1);
        assert_eq!(heap.global().chunk(chunk).node(), NodeId::new(0));
    }

    #[test]
    fn alloc_and_read_back_raw_object() {
        let mut heap = two_vproc_heap();
        let obj = heap.alloc_raw(0, &[1, 2, 3]).unwrap();
        assert_eq!(heap.space_of(obj), Space::LocalNursery { vproc: 0 });
        assert_eq!(heap.header_of(obj).len_words, 3);
        assert_eq!(heap.payload(obj), vec![1, 2, 3]);
        assert_eq!(heap.read_field(obj, 2), 3);
        assert_eq!(heap.object_bytes(obj), 32);
        assert_eq!(heap.node_of(obj), NodeId::new(0));
    }

    #[test]
    fn vector_fields_are_all_pointers() {
        let mut heap = two_vproc_heap();
        let a = heap.alloc_raw(0, &[i64_to_word(42)]).unwrap();
        let v = heap.alloc_vector(0, &[a.raw(), 0]).unwrap();
        let header = heap.header_of(v);
        assert_eq!(heap.pointer_field_indices(header).unwrap(), vec![0, 1]);
    }

    #[test]
    fn mixed_objects_respect_descriptors() {
        let mut heap = two_vproc_heap();
        let desc = heap.register_descriptor(Descriptor::new("pair", 2, 0b10));
        let a = heap.alloc_raw(0, &[7]).unwrap();
        let obj = heap.alloc_mixed(0, desc, &[5, a.raw()]).unwrap();
        let header = heap.header_of(obj);
        assert_eq!(heap.pointer_field_indices(header).unwrap(), vec![1]);
        // Wrong payload size is rejected.
        assert!(matches!(
            heap.alloc_mixed(0, desc, &[1]),
            Err(HeapError::PayloadSizeMismatch { .. })
        ));
    }

    #[test]
    fn evacuate_to_old_area_installs_forward() {
        let mut heap = two_vproc_heap();
        let obj = heap.alloc_raw(0, &[9, 8]).unwrap();
        heap.local_mut(0).begin_minor();
        let (copy, bytes) = heap
            .evacuate(obj, EvacTarget::OldArea { vproc: 0 })
            .unwrap();
        assert_eq!(bytes, 24);
        assert_eq!(heap.forwarded_to(obj), Some(copy));
        assert_eq!(heap.payload(copy), vec![9, 8]);
        assert_eq!(heap.space_of(copy), Space::LocalYoung { vproc: 0 });
        assert_eq!(heap.stats().evacuated_words, 3);
    }

    #[test]
    fn evacuate_to_global_uses_current_chunk() {
        let mut heap = two_vproc_heap();
        let obj = heap.alloc_raw(1, &[4]).unwrap();
        let (copy, _) = heap
            .evacuate(obj, EvacTarget::GlobalCurrent { vproc: 1 })
            .unwrap();
        assert!(heap.is_global(copy));
        assert_eq!(heap.node_of(copy), NodeId::new(1));
        assert_eq!(heap.payload(copy), vec![4]);
        assert_eq!(heap.stats().chunk_acquisitions, 1);
    }

    #[test]
    fn global_allocation_rolls_over_to_fresh_chunk() {
        let mut heap = two_vproc_heap();
        let chunk_words = heap.global().chunk_size_words();
        // Fill most of the first chunk.
        let big = vec![0u64; chunk_words - 2];
        let header = Header::new(ObjectKind::Raw, big.len() as u64).encode();
        heap.alloc_in_global(0, header, &big).unwrap();
        let first = heap.current_chunk(0).unwrap();
        // This one does not fit; a fresh chunk is acquired transparently.
        let header2 = Header::new(ObjectKind::Raw, 4).encode();
        let obj = heap.alloc_in_global(0, header2, &[1, 2, 3, 4]).unwrap();
        let second = heap.current_chunk(0).unwrap();
        assert_ne!(first, second);
        assert_eq!(heap.space_of(obj), Space::Global { chunk: second });
        assert_eq!(heap.global().chunk(first).state(), ChunkState::Filled);
    }

    #[test]
    fn oversized_global_objects_are_rejected() {
        let mut heap = two_vproc_heap();
        let too_big = vec![0u64; heap.global().chunk_size_words() + 1];
        let header = Header::new(ObjectKind::Raw, too_big.len() as u64).encode();
        assert!(matches!(
            heap.alloc_in_global(0, header, &too_big),
            Err(HeapError::ObjectTooLarge { .. })
        ));
    }

    #[test]
    fn space_resolution_distinguishes_regions() {
        let mut heap = two_vproc_heap();
        let nursery_obj = heap.alloc_raw(0, &[1]).unwrap();
        assert!(heap.space_of(nursery_obj).is_local());
        assert_eq!(heap.space_of(nursery_obj).vproc(), Some(0));
        let chunk = heap.fresh_current_chunk(0);
        let base = heap.global().chunk_base(chunk);
        assert_eq!(heap.space_of(base), Space::Global { chunk });
        assert!(heap.space_of(base).is_global());
        assert_eq!(heap.space_of(Addr::new(8)), Space::Unmapped);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn reading_unmapped_address_panics() {
        let heap = two_vproc_heap();
        let _ = heap.read_word(Addr::new(8));
    }

    #[test]
    fn retire_current_chunk_clears_ownership() {
        let mut heap = two_vproc_heap();
        let chunk = heap.fresh_current_chunk(0);
        heap.retire_current_chunk(0);
        assert_eq!(heap.current_chunk(0), None);
        assert_eq!(heap.global().chunk(chunk).state(), ChunkState::Filled);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_home_node_rejected() {
        let _ = Heap::new(HeapConfig::small_for_tests(), &[NodeId::new(9)], 2);
    }
}
