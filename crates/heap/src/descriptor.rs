//! The object-descriptor table for mixed-type objects (paper §3.2).
//!
//! In Manticore, the compiler generates, for every mixed-type object layout,
//! an entry in an object-descriptor table containing specialised scanning and
//! forwarding functions, so the collector never has to interpret a layout at
//! runtime. This reproduction keeps the table but builds it at runtime:
//! each [`Descriptor`] records which payload words hold pointers, and the
//! [`DescriptorTable`] hands out the 15-bit IDs that go into object headers.

use crate::header::{ObjectKind, FIRST_MIXED_ID, MAX_ID};
use serde::{Deserialize, Serialize};

/// Layout description of one mixed-type object shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Descriptor {
    /// Human-readable name, for diagnostics (e.g. `"bh-tree-node"`).
    pub name: String,
    /// Bitmask over payload words: bit `i` set means payload word `i` holds a
    /// pointer. Mixed objects are therefore limited to 64 words, which is
    /// ample for the workloads (larger structures use vectors).
    pub pointer_mask: u64,
    /// Number of payload words this shape occupies. Objects allocated with
    /// this descriptor must have exactly this many payload words.
    pub size_words: u32,
}

impl Descriptor {
    /// Creates a descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `size_words` exceeds 64 or if the pointer mask mentions
    /// words beyond `size_words`.
    pub fn new(name: impl Into<String>, size_words: u32, pointer_mask: u64) -> Self {
        assert!(size_words <= 64, "mixed objects are limited to 64 words");
        if size_words < 64 {
            assert!(
                pointer_mask >> size_words == 0,
                "pointer mask mentions words beyond the object size"
            );
        }
        Descriptor {
            name: name.into(),
            pointer_mask,
            size_words,
        }
    }

    /// Indices of the payload words that hold pointers.
    pub fn pointer_offsets(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.size_words as usize).filter(|i| self.pointer_mask & (1 << i) != 0)
    }

    /// True if payload word `index` holds a pointer.
    pub fn is_pointer(&self, index: usize) -> bool {
        index < self.size_words as usize && self.pointer_mask & (1 << index) != 0
    }

    /// Number of pointer fields.
    pub fn pointer_count(&self) -> usize {
        self.pointer_mask.count_ones() as usize
    }
}

/// Identifier of a registered mixed-object descriptor; this is the value
/// stored in the header ID field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DescriptorId(u16);

impl DescriptorId {
    /// The raw 15-bit ID.
    pub fn id(self) -> u16 {
        self.0
    }

    /// The object kind corresponding to this descriptor.
    pub fn kind(self) -> ObjectKind {
        ObjectKind::Mixed(self.0)
    }
}

/// The table of registered mixed-object descriptors.
///
/// # Examples
///
/// ```
/// # use mgc_heap::{DescriptorTable, Descriptor};
/// let mut table = DescriptorTable::new();
/// // A cons cell: word 0 is the head (a pointer), word 1 the tail (a pointer).
/// let cons = table.register(Descriptor::new("cons", 2, 0b11));
/// assert_eq!(table.get(cons.id()).unwrap().pointer_count(), 2);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DescriptorTable {
    descriptors: Vec<Descriptor>,
}

impl DescriptorTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        DescriptorTable {
            descriptors: Vec::new(),
        }
    }

    /// Registers a descriptor and returns its ID.
    ///
    /// # Panics
    ///
    /// Panics if the 15-bit ID space is exhausted.
    pub fn register(&mut self, descriptor: Descriptor) -> DescriptorId {
        let id = FIRST_MIXED_ID as usize + self.descriptors.len();
        assert!(id <= MAX_ID as usize, "descriptor table is full");
        self.descriptors.push(descriptor);
        DescriptorId(id as u16)
    }

    /// Looks up the descriptor for header ID `id`.
    ///
    /// Returns `None` for the reserved raw/vector IDs and unknown IDs.
    pub fn get(&self, id: u16) -> Option<&Descriptor> {
        if id < FIRST_MIXED_ID {
            return None;
        }
        self.descriptors.get((id - FIRST_MIXED_ID) as usize)
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// True if no descriptors have been registered.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Iterates over `(header_id, descriptor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &Descriptor)> + '_ {
        self.descriptors
            .iter()
            .enumerate()
            .map(|(i, d)| ((i + FIRST_MIXED_ID as usize) as u16, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut t = DescriptorTable::new();
        let a = t.register(Descriptor::new("pair", 2, 0b01));
        let b = t.register(Descriptor::new("triple", 3, 0b110));
        assert_eq!(a.id(), FIRST_MIXED_ID);
        assert_eq!(b.id(), FIRST_MIXED_ID + 1);
        assert_eq!(t.get(a.id()).unwrap().name, "pair");
        assert_eq!(t.get(b.id()).unwrap().name, "triple");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn reserved_ids_have_no_descriptor() {
        let mut t = DescriptorTable::new();
        t.register(Descriptor::new("x", 1, 0));
        assert!(t.get(crate::header::RAW_ID).is_none());
        assert!(t.get(crate::header::VECTOR_ID).is_none());
        assert!(t.get(999).is_none());
    }

    #[test]
    fn pointer_offsets_match_mask() {
        let d = Descriptor::new("node", 4, 0b1010);
        assert_eq!(d.pointer_offsets().collect::<Vec<_>>(), vec![1, 3]);
        assert!(d.is_pointer(1));
        assert!(!d.is_pointer(0));
        assert!(!d.is_pointer(10));
        assert_eq!(d.pointer_count(), 2);
    }

    #[test]
    fn descriptor_kind_round_trip() {
        let mut t = DescriptorTable::new();
        let id = t.register(Descriptor::new("leaf", 1, 0));
        assert_eq!(id.kind(), ObjectKind::Mixed(id.id()));
    }

    #[test]
    #[should_panic(expected = "64 words")]
    fn oversized_descriptor_rejected() {
        let _ = Descriptor::new("huge", 65, 0);
    }

    #[test]
    #[should_panic(expected = "beyond the object size")]
    fn mask_beyond_size_rejected() {
        let _ = Descriptor::new("bad", 2, 0b100);
    }

    #[test]
    fn iter_yields_header_ids() {
        let mut t = DescriptorTable::new();
        t.register(Descriptor::new("a", 1, 0));
        t.register(Descriptor::new("b", 2, 0b01));
        let ids: Vec<u16> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![FIRST_MIXED_ID, FIRST_MIXED_ID + 1]);
    }

    #[test]
    fn full_word_descriptor_allowed() {
        let d = Descriptor::new("wide", 64, u64::MAX);
        assert_eq!(d.pointer_count(), 64);
    }
}
