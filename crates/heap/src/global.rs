//! The chunked global heap (paper §3.1, §3.3, §3.4).
//!
//! The global heap is a collection of fixed-size [`Chunk`]s. Chunks carry
//! the NUMA node they were physically allocated on; when a chunk is freed
//! (after a global collection) it goes onto its node's free list and is
//! preferentially reused by vprocs on that node, preserving node affinity.

use crate::addr::Addr;
use crate::chunk::{Chunk, ChunkId, ChunkState};
use crate::space::{AddressSpace, RegionOwner};
use mgc_numa::NodeId;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Counters describing global-heap activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalHeapStats {
    /// Chunks created from fresh address space.
    pub chunks_created: u64,
    /// Chunk acquisitions satisfied from a node-local free list.
    pub chunks_reused_local: u64,
    /// Chunk acquisitions satisfied from another node's free list (only when
    /// affinity is disabled or the local list is empty and stealing is
    /// allowed).
    pub chunks_reused_remote: u64,
}

/// The global heap: all chunks plus the per-node free lists.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalHeap {
    chunk_size_words: usize,
    chunks: Vec<Chunk>,
    free_by_node: Vec<Vec<ChunkId>>,
    /// Whether chunk reuse honours node affinity (the paper's design). The
    /// ablation benchmark disables this.
    node_affinity: bool,
    stats: GlobalHeapStats,
}

impl GlobalHeap {
    /// Creates an empty global heap for a machine with `num_nodes` nodes and
    /// the given chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size_words` or `num_nodes` is zero.
    pub fn new(chunk_size_words: usize, num_nodes: usize) -> Self {
        assert!(chunk_size_words > 0, "chunks must be non-empty");
        assert!(num_nodes > 0, "a machine must have at least one node");
        GlobalHeap {
            chunk_size_words,
            chunks: Vec::new(),
            free_by_node: vec![Vec::new(); num_nodes],
            node_affinity: true,
            stats: GlobalHeapStats::default(),
        }
    }

    /// Enables or disables node-affine chunk reuse (enabled by default).
    pub fn set_node_affinity(&mut self, enabled: bool) {
        self.node_affinity = enabled;
    }

    /// Whether node-affine chunk reuse is enabled.
    pub fn node_affinity(&self) -> bool {
        self.node_affinity
    }

    /// Chunk size in words.
    pub fn chunk_size_words(&self) -> usize {
        self.chunk_size_words
    }

    /// Chunk size in bytes.
    pub fn chunk_size_bytes(&self) -> usize {
        self.chunk_size_words * crate::addr::WORD_BYTES
    }

    /// Activity counters.
    pub fn stats(&self) -> GlobalHeapStats {
        self.stats
    }

    /// Total number of chunks ever created.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Number of chunks currently in use (not on a free list).
    pub fn chunks_in_use(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| c.state() != ChunkState::Free)
            .count()
    }

    /// Bytes of chunk space currently in use; this is the quantity the
    /// global-collection trigger compares against its threshold (§3.4).
    pub fn bytes_in_use(&self) -> usize {
        self.chunks_in_use() * self.chunk_size_bytes()
    }

    /// Bytes actually occupied by objects in in-use chunks.
    pub fn live_bytes_upper_bound(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| c.state() != ChunkState::Free)
            .map(Chunk::used_bytes)
            .sum()
    }

    /// Borrow a chunk.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not exist.
    pub fn chunk(&self, id: ChunkId) -> &Chunk {
        &self.chunks[id.index()]
    }

    /// Mutably borrow a chunk.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not exist.
    pub fn chunk_mut(&mut self, id: ChunkId) -> &mut Chunk {
        &mut self.chunks[id.index()]
    }

    /// All chunk ids currently in a given state.
    pub fn chunks_in_state(&self, state: ChunkState) -> Vec<ChunkId> {
        self.chunks
            .iter()
            .filter(|c| c.state() == state)
            .map(Chunk::id)
            .collect()
    }

    /// Iterates over all chunks.
    pub fn iter(&self) -> impl Iterator<Item = &Chunk> + '_ {
        self.chunks.iter()
    }

    /// Acquires a chunk for use by a vproc whose preferred node is `node`
    /// (already resolved through the placement policy). Reuses a free chunk
    /// with node affinity when possible, otherwise maps a fresh chunk.
    ///
    /// The returned chunk is empty and in the [`ChunkState::Free`] state; the
    /// caller decides its new state.
    pub fn acquire_chunk(&mut self, node: NodeId, space: &mut AddressSpace) -> ChunkId {
        // Node-affine reuse first.
        if let Some(id) = self.free_by_node[node.index()].pop() {
            self.stats.chunks_reused_local += 1;
            return id;
        }
        if !self.node_affinity {
            // Affinity disabled: take any free chunk and pretend it now lives
            // on the requested node (modelling a page migration / ignoring
            // placement, as the ablation does).
            for list in self.free_by_node.iter_mut() {
                if let Some(id) = list.pop() {
                    self.stats.chunks_reused_remote += 1;
                    self.chunks[id.index()].set_node(node);
                    return id;
                }
            }
        }
        // Map a brand new chunk.
        let id = ChunkId(self.chunks.len() as u32);
        let blocks = 1; // the address space block size equals the chunk size
        let base = space.map(RegionOwner::Global { chunk: id }, blocks);
        let chunk = Chunk::new(id, base, node, self.chunk_size_words);
        self.chunks.push(chunk);
        self.stats.chunks_created += 1;
        id
    }

    /// Returns a chunk to its node's free list, clearing its contents.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is already free.
    pub fn release_chunk(&mut self, id: ChunkId) {
        let chunk = &mut self.chunks[id.index()];
        assert!(
            chunk.state() != ChunkState::Free,
            "{id:?} released while already free"
        );
        chunk.reset();
        let node = chunk.node();
        self.free_by_node[node.index()].push(id);
    }

    /// Number of free chunks currently available on `node`.
    pub fn free_chunks_on(&self, node: NodeId) -> usize {
        self.free_by_node[node.index()].len()
    }

    /// The base address of a chunk.
    pub fn chunk_base(&self, id: ChunkId) -> Addr {
        self.chunks[id.index()].base()
    }
}

/// Entries per link-table segment (a power of two so indexing is a shift
/// and a mask).
const POOL_SEG_SHIFT: usize = 10;
const POOL_SEG_SIZE: usize = 1 << POOL_SEG_SHIFT;
/// Maximum number of segments, bounding the pool at ~one million chunk ids.
const POOL_MAX_SEGS: usize = 1024;

/// The `next` links of the Treiber stacks, indexed by chunk id. Segments are
/// initialised on first touch (via [`OnceLock`]), so growth never blocks a
/// concurrent pop and steady-state access is a load through a shared
/// reference.
#[derive(Debug)]
struct LinkTable {
    segments: Vec<OnceLock<Box<[AtomicU64]>>>,
}

impl LinkTable {
    fn new() -> Self {
        LinkTable {
            segments: (0..POOL_MAX_SEGS).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The link slot of chunk `id`. Slots hold the successor's id + 1
    /// (0 terminates the list).
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds the pool's fixed capacity.
    fn slot(&self, id: usize) -> &AtomicU64 {
        let segment = id >> POOL_SEG_SHIFT;
        assert!(
            segment < POOL_MAX_SEGS,
            "chunk id {id} exceeds the pool's {} link slots",
            POOL_MAX_SEGS * POOL_SEG_SIZE
        );
        let segment = self.segments[segment]
            .get_or_init(|| (0..POOL_SEG_SIZE).map(|_| AtomicU64::new(0)).collect());
        &segment[id & (POOL_SEG_SIZE - 1)]
    }
}

/// The lock-free chunk free-list used by the real-threads backend.
///
/// This is the concurrent counterpart of [`GlobalHeap`]'s per-node free
/// lists. Acquiring or releasing a chunk is the only synchronisation point
/// of the promotion path (§3.3), so it must not serialise workers: each
/// node's free list is a **Treiber stack** whose head packs a 32-bit chunk
/// index with a 32-bit ABA tag into one [`AtomicU64`] (the tag advances on
/// every successful push and pop, so a pop that raced with a
/// pop-then-repush of the same chunk cannot CAS a stale head back in). The
/// `next` links live in a segmented table indexed by chunk id; the common
/// case of both `push` and `pop` is a handful of atomic operations and no
/// lock.
#[derive(Debug)]
pub struct SharedChunkPool {
    /// Per-node stack heads: `(tag << 32) | (chunk id + 1)`, 0 = empty.
    heads: Vec<AtomicU64>,
    links: LinkTable,
    /// Per-node free-chunk counts (maintained separately so sizing queries
    /// never walk a concurrently mutating list).
    free_counts: Vec<AtomicUsize>,
    node_affinity: AtomicBool,
    chunks_reused_local: AtomicU64,
    chunks_reused_remote: AtomicU64,
}

impl SharedChunkPool {
    /// Creates an empty pool for a machine with `num_nodes` NUMA nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "a machine must have at least one node");
        SharedChunkPool {
            heads: (0..num_nodes).map(|_| AtomicU64::new(0)).collect(),
            links: LinkTable::new(),
            free_counts: (0..num_nodes).map(|_| AtomicUsize::new(0)).collect(),
            node_affinity: AtomicBool::new(true),
            chunks_reused_local: AtomicU64::new(0),
            chunks_reused_remote: AtomicU64::new(0),
        }
    }

    /// Enables or disables node-affine chunk reuse (enabled by default).
    pub fn set_node_affinity(&self, enabled: bool) {
        self.node_affinity.store(enabled, Ordering::Release);
    }

    /// Whether node-affine chunk reuse is enabled.
    pub fn node_affinity(&self) -> bool {
        self.node_affinity.load(Ordering::Acquire)
    }

    /// Pops the top chunk of `node`'s Treiber stack.
    fn pop_from(&self, node: usize) -> Option<ChunkId> {
        let head = &self.heads[node];
        let mut current = head.load(Ordering::Acquire);
        loop {
            let index = (current & u64::from(u32::MAX)) as u32;
            if index == 0 {
                return None;
            }
            let id = index - 1;
            let next = self.links.slot(id as usize).load(Ordering::Acquire);
            let tag = (current >> 32).wrapping_add(1);
            let replacement = (tag << 32) | next;
            match head.compare_exchange_weak(
                current,
                replacement,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.free_counts[node].fetch_sub(1, Ordering::AcqRel);
                    return Some(ChunkId(id));
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Pops a free chunk for a vproc whose preferred node is `node`,
    /// honouring node affinity exactly as [`GlobalHeap::acquire_chunk`]
    /// does. Returns `None` when the caller must map a fresh chunk. The
    /// second tuple element says whether the reuse crossed nodes.
    pub fn pop(&self, node: NodeId) -> Option<(ChunkId, bool)> {
        if let Some(id) = self.pop_from(node.index()) {
            self.chunks_reused_local.fetch_add(1, Ordering::Relaxed);
            return Some((id, false));
        }
        if !self.node_affinity.load(Ordering::Acquire) {
            for other in 0..self.heads.len() {
                if other == node.index() {
                    // Already probed above; a chunk pushed here since then
                    // would be a node-local reuse, not a remote one.
                    continue;
                }
                if let Some(id) = self.pop_from(other) {
                    self.chunks_reused_remote.fetch_add(1, Ordering::Relaxed);
                    return Some((id, true));
                }
            }
        }
        None
    }

    /// Returns a chunk to `node`'s free list.
    pub fn push(&self, node: NodeId, id: ChunkId) {
        let link = self.links.slot(id.index());
        let head = &self.heads[node.index()];
        let mut current = head.load(Ordering::Acquire);
        loop {
            link.store(current & u64::from(u32::MAX), Ordering::Release);
            let tag = (current >> 32).wrapping_add(1);
            let replacement = (tag << 32) | u64::from(id.0 + 1);
            match head.compare_exchange_weak(
                current,
                replacement,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.free_counts[node.index()].fetch_add(1, Ordering::AcqRel);
                    return;
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Number of free chunks currently parked on `node`.
    pub fn free_chunks_on(&self, node: NodeId) -> usize {
        self.free_counts[node.index()].load(Ordering::Acquire)
    }

    /// Chunk acquisitions satisfied from a node-local free list.
    pub fn reused_local(&self) -> u64 {
        self.chunks_reused_local.load(Ordering::Relaxed)
    }

    /// Chunk acquisitions that had to cross nodes (affinity disabled).
    pub fn reused_remote(&self) -> u64 {
        self.chunks_reused_remote.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{Header, ObjectKind};

    fn setup() -> (GlobalHeap, AddressSpace) {
        let heap = GlobalHeap::new(256, 4);
        let space = AddressSpace::new(256);
        (heap, space)
    }

    #[test]
    fn acquire_creates_then_reuses_with_affinity() {
        let (mut heap, mut space) = setup();
        let a = heap.acquire_chunk(NodeId::new(2), &mut space);
        heap.chunk_mut(a).set_state(ChunkState::Filled);
        assert_eq!(heap.stats().chunks_created, 1);
        assert_eq!(heap.chunk(a).node(), NodeId::new(2));

        heap.release_chunk(a);
        assert_eq!(heap.free_chunks_on(NodeId::new(2)), 1);

        // A vproc on node 2 gets the same chunk back.
        let b = heap.acquire_chunk(NodeId::new(2), &mut space);
        assert_eq!(a, b);
        assert_eq!(heap.stats().chunks_reused_local, 1);

        // A vproc on node 0 does NOT reuse node 2's chunk: affinity.
        heap.chunk_mut(b).set_state(ChunkState::Filled);
        heap.release_chunk(b);
        let c = heap.acquire_chunk(NodeId::new(0), &mut space);
        assert_ne!(c, b);
        assert_eq!(heap.chunk(c).node(), NodeId::new(0));
        assert_eq!(heap.stats().chunks_created, 2);
    }

    #[test]
    fn affinity_disabled_steals_any_free_chunk() {
        let (mut heap, mut space) = setup();
        heap.set_node_affinity(false);
        let a = heap.acquire_chunk(NodeId::new(3), &mut space);
        heap.chunk_mut(a).set_state(ChunkState::Filled);
        heap.release_chunk(a);
        let b = heap.acquire_chunk(NodeId::new(1), &mut space);
        assert_eq!(a, b);
        assert_eq!(heap.chunk(b).node(), NodeId::new(1));
        assert_eq!(heap.stats().chunks_reused_remote, 1);
    }

    #[test]
    fn usage_accounting() {
        let (mut heap, mut space) = setup();
        let a = heap.acquire_chunk(NodeId::new(0), &mut space);
        heap.chunk_mut(a)
            .set_state(ChunkState::Current { vproc: 0 });
        let b = heap.acquire_chunk(NodeId::new(1), &mut space);
        heap.chunk_mut(b).set_state(ChunkState::Filled);
        assert_eq!(heap.chunks_in_use(), 2);
        assert_eq!(heap.bytes_in_use(), 2 * 256 * 8);
        heap.chunk_mut(a)
            .alloc(Header::new(ObjectKind::Raw, 3).encode(), &[1, 2, 3])
            .unwrap();
        assert_eq!(heap.live_bytes_upper_bound(), 4 * 8);
        heap.release_chunk(b);
        assert_eq!(heap.chunks_in_use(), 1);
    }

    #[test]
    #[should_panic(expected = "already free")]
    fn double_release_panics() {
        let (mut heap, mut space) = setup();
        let a = heap.acquire_chunk(NodeId::new(0), &mut space);
        heap.chunk_mut(a).set_state(ChunkState::Filled);
        heap.release_chunk(a);
        heap.release_chunk(a);
    }

    #[test]
    fn chunks_in_state_filters() {
        let (mut heap, mut space) = setup();
        let a = heap.acquire_chunk(NodeId::new(0), &mut space);
        let b = heap.acquire_chunk(NodeId::new(0), &mut space);
        heap.chunk_mut(a).set_state(ChunkState::FromSpace);
        heap.chunk_mut(b).set_state(ChunkState::ToSpace);
        assert_eq!(heap.chunks_in_state(ChunkState::FromSpace), vec![a]);
        assert_eq!(heap.chunks_in_state(ChunkState::ToSpace), vec![b]);
        assert_eq!(heap.num_chunks(), 2);
        assert_eq!(heap.iter().count(), 2);
    }

    #[test]
    fn chunk_addresses_come_from_address_space() {
        let (mut heap, mut space) = setup();
        let a = heap.acquire_chunk(NodeId::new(0), &mut space);
        let base = heap.chunk_base(a);
        assert_eq!(space.owner_of(base), RegionOwner::Global { chunk: a });
    }

    #[test]
    fn shared_pool_prefers_node_affinity() {
        let pool = SharedChunkPool::new(2);
        assert_eq!(pool.pop(NodeId::new(0)), None);
        pool.push(NodeId::new(1), ChunkId(9));
        // Affinity on: node 0 does not take node 1's chunk.
        assert_eq!(pool.pop(NodeId::new(0)), None);
        assert_eq!(pool.free_chunks_on(NodeId::new(1)), 1);
        assert_eq!(pool.pop(NodeId::new(1)), Some((ChunkId(9), false)));
        assert_eq!(pool.reused_local(), 1);
    }

    #[test]
    fn shared_pool_without_affinity_steals_any_chunk() {
        let pool = SharedChunkPool::new(2);
        pool.set_node_affinity(false);
        pool.push(NodeId::new(1), ChunkId(4));
        assert_eq!(pool.pop(NodeId::new(0)), Some((ChunkId(4), true)));
        assert_eq!(pool.reused_remote(), 1);
    }

    #[test]
    fn shared_pool_treiber_stack_is_lifo() {
        let pool = SharedChunkPool::new(1);
        let node = NodeId::new(0);
        pool.push(node, ChunkId(1));
        pool.push(node, ChunkId(2));
        pool.push(node, ChunkId(3));
        assert_eq!(pool.free_chunks_on(node), 3);
        assert_eq!(pool.pop(node), Some((ChunkId(3), false)));
        assert_eq!(pool.pop(node), Some((ChunkId(2), false)));
        pool.push(node, ChunkId(7));
        assert_eq!(pool.pop(node), Some((ChunkId(7), false)));
        assert_eq!(pool.pop(node), Some((ChunkId(1), false)));
        assert_eq!(pool.pop(node), None);
        assert_eq!(pool.free_chunks_on(node), 0);
    }

    #[test]
    fn shared_pool_concurrent_push_pop_neither_loses_nor_duplicates_chunks() {
        use std::sync::Arc;

        const CHUNKS: u32 = 64;
        let pool = Arc::new(SharedChunkPool::new(1));
        let node = NodeId::new(0);
        for id in 0..CHUNKS {
            pool.push(node, ChunkId(id));
        }

        // Four threads hammer the same node's stack with pop/push cycles —
        // the pop-then-repush of the same id is exactly the ABA pattern the
        // tagged head must survive.
        let held: Vec<Vec<ChunkId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    scope.spawn(move || {
                        let mut held = Vec::new();
                        for round in 0..2000usize {
                            if let Some((id, _)) = pool.pop(node) {
                                if round % 3 == 0 {
                                    pool.push(node, id);
                                } else {
                                    held.push(id);
                                }
                            }
                            if held.len() > 8 {
                                pool.push(node, held.pop().unwrap());
                            }
                        }
                        held
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });

        let mut seen: Vec<u32> = held.into_iter().flatten().map(|id| id.0).collect();
        while let Some((id, _)) = pool.pop(node) {
            seen.push(id.0);
        }
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..CHUNKS).collect::<Vec<_>>(),
            "every chunk must come back exactly once"
        );
    }
}
