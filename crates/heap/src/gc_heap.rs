//! The heap-mechanism interface the collector algorithms are written
//! against.
//!
//! `mgc-core`'s minor collection, major collection, and promotion are pure
//! *policy*: they decide what to copy and where, but every actual memory
//! operation goes through this trait. Two implementations exist:
//!
//! * [`Heap`](crate::Heap) — the discrete-event simulation's monolithic
//!   heap, where one thread owns every vproc's local heap and the global
//!   heap;
//! * [`WorkerHeap`](crate::WorkerHeap) — the real-threads backend's
//!   per-thread view: the worker owns its local heap outright (so the
//!   minor-GC path takes no locks at all, §3.3) and reaches the shared
//!   global heap through atomic words and a lock-free chunk pool.
//!
//! The trait deliberately exposes only what the collection algorithms need;
//! mutator-facing allocation stays on the concrete types.

use crate::addr::{Addr, Word};
use crate::error::HeapError;
use crate::header::{Header, HeaderSlot};
use crate::heap::{EvacTarget, Space};
use crate::local::LocalHeap;
use mgc_numa::NodeId;

/// Heap mechanism used by the collection algorithms in `mgc-core`.
pub trait GcHeap {
    /// Number of vprocs sharing this heap (the whole machine's count, even
    /// for a per-worker view — the global-collection threshold scales with
    /// it, §3.4).
    fn num_vprocs(&self) -> usize;

    /// Borrow a vproc's local heap. Per-worker views only answer for their
    /// own vproc.
    fn local(&self, vproc: usize) -> &LocalHeap;

    /// Mutably borrow a vproc's local heap. Per-worker views only answer for
    /// their own vproc.
    fn local_mut(&mut self, vproc: usize) -> &mut LocalHeap;

    /// Which space `addr` belongs to.
    fn space_of(&self, addr: Addr) -> Space;

    /// True if `addr` lies in any local heap.
    fn is_local(&self, addr: Addr) -> bool {
        self.space_of(addr).is_local()
    }

    /// True if `addr` lies in the global heap.
    fn is_global(&self, addr: Addr) -> bool {
        self.space_of(addr).is_global()
    }

    /// The NUMA node whose memory backs `addr`.
    fn node_of(&self, addr: Addr) -> NodeId;

    /// Reads the header slot of the object at `obj`: a header or a
    /// forwarding pointer.
    fn header_slot(&self, obj: Addr) -> HeaderSlot;

    /// Reads the header of the object at `obj`, panicking on a forward.
    fn header_of(&self, obj: Addr) -> Header {
        self.header_slot(obj).expect_header()
    }

    /// If the object at `obj` has been moved, its new address.
    fn forwarded_to(&self, obj: Addr) -> Option<Addr> {
        self.header_slot(obj).forwarded_to()
    }

    /// Reads payload field `index` of the object at `obj`.
    fn read_field(&self, obj: Addr, index: usize) -> Word;

    /// Writes payload field `index` of the object at `obj` (collector-only:
    /// the mutator language is mutation-free).
    fn write_field(&mut self, obj: Addr, index: usize, value: Word);

    /// Reads the whole payload of the object at `obj`.
    fn payload(&self, obj: Addr) -> Vec<Word> {
        let header = self.header_of(obj);
        (0..header.len_words as usize)
            .map(|i| self.read_field(obj, i))
            .collect()
    }

    /// Total size in bytes of the object at `obj`, header included.
    fn object_bytes(&self, obj: Addr) -> usize {
        self.header_of(obj).total_bytes()
    }

    /// The payload indices of the pointer fields for an object with header
    /// `header`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::UnknownDescriptor`] for an unregistered mixed
    /// object.
    fn pointer_field_indices(&self, header: Header) -> Result<Vec<usize>, HeapError>;

    /// Copies the object at `obj` into `target`, installing a forwarding
    /// pointer, and returns the new address plus bytes copied.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors from the target space.
    fn evacuate(&mut self, obj: Addr, target: EvacTarget) -> Result<(Addr, usize), HeapError>;

    /// Number of global-chunk acquisitions so far (each is the
    /// synchronisation point of §3.3; the collector charges for increases).
    fn chunk_acquisitions(&self) -> u64;

    /// Bytes of global-heap chunk space in use — the quantity the global
    /// collection trigger compares against its threshold (§3.4).
    fn global_bytes_in_use(&self) -> usize;

    /// Re-checks the heap invariants, returning human-readable violations.
    /// Views that cannot see the whole machine return an empty list.
    fn verify_violations(&self) -> Vec<String> {
        Vec::new()
    }
}

impl GcHeap for crate::Heap {
    fn num_vprocs(&self) -> usize {
        crate::Heap::num_vprocs(self)
    }

    fn local(&self, vproc: usize) -> &LocalHeap {
        crate::Heap::local(self, vproc)
    }

    fn local_mut(&mut self, vproc: usize) -> &mut LocalHeap {
        crate::Heap::local_mut(self, vproc)
    }

    fn space_of(&self, addr: Addr) -> Space {
        crate::Heap::space_of(self, addr)
    }

    fn is_local(&self, addr: Addr) -> bool {
        crate::Heap::is_local(self, addr)
    }

    fn is_global(&self, addr: Addr) -> bool {
        crate::Heap::is_global(self, addr)
    }

    fn node_of(&self, addr: Addr) -> NodeId {
        crate::Heap::node_of(self, addr)
    }

    fn header_slot(&self, obj: Addr) -> HeaderSlot {
        crate::Heap::header_slot(self, obj)
    }

    fn read_field(&self, obj: Addr, index: usize) -> Word {
        crate::Heap::read_field(self, obj, index)
    }

    fn write_field(&mut self, obj: Addr, index: usize, value: Word) {
        crate::Heap::write_field(self, obj, index, value)
    }

    fn pointer_field_indices(&self, header: Header) -> Result<Vec<usize>, HeapError> {
        crate::Heap::pointer_field_indices(self, header)
    }

    fn evacuate(&mut self, obj: Addr, target: EvacTarget) -> Result<(Addr, usize), HeapError> {
        crate::Heap::evacuate(self, obj, target)
    }

    fn chunk_acquisitions(&self) -> u64 {
        self.stats().chunk_acquisitions
    }

    fn global_bytes_in_use(&self) -> usize {
        self.global().bytes_in_use()
    }

    fn verify_violations(&self) -> Vec<String> {
        crate::verify::verify_heap(self)
            .iter()
            .map(ToString::to_string)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Heap, HeapConfig};
    use mgc_numa::NodeId;

    fn heap() -> Heap {
        Heap::new(HeapConfig::small_for_tests(), &[NodeId::new(0)], 1)
    }

    #[test]
    fn trait_and_inherent_methods_agree() {
        let mut heap = heap();
        let obj = heap.alloc_raw(0, &[5, 6]).unwrap();
        let view: &dyn GcHeap = &heap;
        assert_eq!(view.num_vprocs(), 1);
        assert!(view.is_local(obj));
        assert!(!view.is_global(obj));
        assert_eq!(view.read_field(obj, 1), 6);
        assert_eq!(view.payload(obj), vec![5, 6]);
        assert_eq!(view.object_bytes(obj), 24);
        assert_eq!(view.forwarded_to(obj), None);
        assert_eq!(view.chunk_acquisitions(), 0);
        assert_eq!(view.global_bytes_in_use(), 0);
        assert!(view.verify_violations().is_empty());
    }
}
