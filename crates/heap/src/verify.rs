//! Heap invariant verification (paper §2.3).
//!
//! The runtime maintains two invariants without write barriers or static
//! analysis:
//!
//! 1. there are no pointers from one vproc's local heap into another's, and
//! 2. there are no pointers from the global heap into any local heap.
//!
//! The checkers in this module walk every live-ish object (everything that
//! has been allocated and not superseded) and report any violation. They are
//! used throughout the test suites and by the runtime's debug mode after
//! every collection.

use crate::addr::{word_as_pointer, Addr};
use crate::chunk::ChunkState;
use crate::heap::{Heap, Space};
use std::fmt;

/// A single violation of the heap invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The object holding the offending field.
    pub holder: Addr,
    /// The space the holder lives in.
    pub holder_space: Space,
    /// The payload index of the offending field.
    pub field: usize,
    /// The address the field points to.
    pub target: Addr,
    /// The space the target lives in.
    pub target_space: Space,
    /// Human-readable description of the rule that was broken.
    pub rule: &'static str,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{rule}: object {holder} ({holder_space:?}) field {field} points to {target} ({target_space:?})",
            rule = self.rule,
            holder = self.holder,
            holder_space = self.holder_space,
            field = self.field,
            target = self.target,
            target_space = self.target_space,
        )
    }
}

fn check_fields(
    heap: &Heap,
    obj: Addr,
    violations: &mut Vec<InvariantViolation>,
    rule: impl Fn(Space, Space) -> Option<&'static str>,
) {
    let header = heap.header_of(obj);
    let holder_space = heap.space_of(obj);
    let indices = match heap.pointer_field_indices(header) {
        Ok(indices) => indices,
        Err(_) => return,
    };
    for index in indices {
        let word = heap.read_field(obj, index);
        let Some(target) = word_as_pointer(word) else {
            continue;
        };
        let target_space = heap.space_of(target);
        if let Some(rule) = rule(holder_space, target_space) {
            violations.push(InvariantViolation {
                holder: obj,
                holder_space,
                field: index,
                target,
                target_space,
                rule,
            });
        }
    }
}

/// Checks the pointer discipline of one vproc's local heap: every pointer
/// field must target the same vproc's local heap or the global heap.
pub fn verify_local_heap(heap: &Heap, vproc: usize) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    let local = heap.local(vproc);
    let objects: Vec<Addr> = local
        .old_objects()
        .chain(local.young_objects())
        .chain(local.nursery_objects())
        .map(|(addr, _)| addr)
        .collect();
    for obj in objects {
        check_fields(heap, obj, &mut violations, |_holder, target| match target {
            Space::LocalNursery { vproc: v }
            | Space::LocalYoung { vproc: v }
            | Space::LocalOld { vproc: v } => {
                if v == vproc {
                    None
                } else {
                    Some("no pointers between distinct local heaps")
                }
            }
            Space::LocalFree { .. } => Some("pointer into reclaimed local-heap space"),
            Space::Global { .. } => None,
            Space::Unmapped => Some("pointer to unmapped memory"),
        });
    }
    violations
}

/// Checks the pointer discipline of the global heap: no pointer field of any
/// global object may target a local heap.
pub fn verify_global_heap(heap: &Heap) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    let chunk_ids: Vec<_> = heap
        .global()
        .iter()
        .filter(|c| c.state() != ChunkState::Free)
        .map(|c| c.id())
        .collect();
    for chunk_id in chunk_ids {
        let objects: Vec<Addr> = heap.global().chunk(chunk_id).objects().collect();
        for obj in objects {
            check_fields(heap, obj, &mut violations, |_holder, target| match target {
                Space::Global { .. } => None,
                Space::Unmapped => Some("pointer to unmapped memory"),
                _ => Some("no pointers from the global heap into a local heap"),
            });
        }
    }
    violations
}

/// Runs every invariant check over the whole heap.
pub fn verify_heap(heap: &Heap) -> Vec<InvariantViolation> {
    let mut violations = verify_global_heap(heap);
    for vproc in 0..heap.num_vprocs() {
        violations.extend(verify_local_heap(heap, vproc));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;
    use mgc_numa::NodeId;

    fn heap() -> Heap {
        Heap::new(
            HeapConfig::small_for_tests(),
            &[NodeId::new(0), NodeId::new(1)],
            2,
        )
    }

    #[test]
    fn clean_heap_has_no_violations() {
        let mut heap = heap();
        let a = heap.alloc_raw(0, &[1]).unwrap();
        let _v = heap.alloc_vector(0, &[a.raw(), 0]).unwrap();
        assert!(verify_heap(&heap).is_empty());
    }

    #[test]
    fn cross_local_pointer_detected() {
        let mut heap = heap();
        let foreign = heap.alloc_raw(1, &[5]).unwrap();
        let holder = heap.alloc_vector(0, &[foreign.raw()]).unwrap();
        let violations = verify_local_heap(&heap, 0);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].holder, holder);
        assert_eq!(violations[0].target, foreign);
        assert!(violations[0].rule.contains("distinct local heaps"));
        assert!(violations[0].to_string().contains("field 0"));
    }

    #[test]
    fn global_to_local_pointer_detected() {
        let mut heap = heap();
        let local_obj = heap.alloc_raw(0, &[3]).unwrap();
        let header = crate::header::Header::new(crate::header::ObjectKind::Vector, 1).encode();
        heap.alloc_in_global(0, header, &[local_obj.raw()]).unwrap();
        let violations = verify_global_heap(&heap);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].rule.contains("global heap"));
    }

    #[test]
    fn pointers_to_global_are_fine_from_both_sides() {
        let mut heap = heap();
        let header = crate::header::Header::new(crate::header::ObjectKind::Raw, 1).encode();
        let global_obj = heap.alloc_in_global(0, header, &[11]).unwrap();
        heap.alloc_vector(0, &[global_obj.raw()]).unwrap();
        let vec_header = crate::header::Header::new(crate::header::ObjectKind::Vector, 1).encode();
        heap.alloc_in_global(1, vec_header, &[global_obj.raw()])
            .unwrap();
        assert!(verify_heap(&heap).is_empty());
    }

    #[test]
    fn raw_objects_never_flag_violations() {
        let mut heap = heap();
        // A raw object whose bits happen to look like a foreign address.
        let foreign = heap.alloc_raw(1, &[1]).unwrap();
        heap.alloc_raw(0, &[foreign.raw()]).unwrap();
        assert!(verify_heap(&heap).is_empty());
    }
}
