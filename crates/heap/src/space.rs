//! The simulated virtual address space.
//!
//! Every heap region (each vproc's local heap and every global-heap chunk)
//! is assigned a disjoint range of a flat address space, in units of
//! fixed-size blocks. Given an address, [`AddressSpace::owner_of`] answers
//! "which region does this belong to?" in constant time, which is what the
//! collector's `space_of` test (local vs. global, which vproc) is built on.

use crate::addr::{Addr, WORD_BYTES};
use crate::chunk::ChunkId;
use serde::{Deserialize, Serialize};

/// The owner of one block of the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionOwner {
    /// Not mapped to any heap region.
    Unmapped,
    /// Part of a vproc's local heap.
    Local {
        /// The owning vproc index.
        vproc: usize,
    },
    /// Part of a global-heap chunk.
    Global {
        /// The owning chunk.
        chunk: ChunkId,
    },
}

/// A flat address space divided into fixed-size blocks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressSpace {
    block_words: usize,
    regions: Vec<RegionOwner>,
}

impl AddressSpace {
    /// Creates an address space with the given block granularity in words.
    ///
    /// Block 0 is permanently unmapped so that the null address never falls
    /// inside a region.
    ///
    /// # Panics
    ///
    /// Panics if `block_words` is zero.
    pub fn new(block_words: usize) -> Self {
        assert!(block_words > 0, "address-space blocks must be non-empty");
        AddressSpace {
            block_words,
            regions: vec![RegionOwner::Unmapped],
        }
    }

    /// The block granularity in words.
    pub fn block_words(&self) -> usize {
        self.block_words
    }

    /// The block granularity in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_words * WORD_BYTES
    }

    /// Maps `blocks` consecutive blocks to `owner` and returns the base
    /// address of the new region.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero or `owner` is [`RegionOwner::Unmapped`].
    pub fn map(&mut self, owner: RegionOwner, blocks: usize) -> Addr {
        assert!(blocks > 0, "cannot map an empty region");
        assert!(
            owner != RegionOwner::Unmapped,
            "cannot map a region to the unmapped owner"
        );
        let first_block = self.regions.len();
        self.regions.extend(std::iter::repeat_n(owner, blocks));
        Addr::new((first_block * self.block_bytes()) as u64)
    }

    /// The owner of the block containing `addr`.
    pub fn owner_of(&self, addr: Addr) -> RegionOwner {
        let block = (addr.raw() as usize) / self.block_bytes();
        self.regions
            .get(block)
            .copied()
            .unwrap_or(RegionOwner::Unmapped)
    }

    /// Total number of mapped blocks (excluding the reserved null block).
    pub fn mapped_blocks(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| **r != RegionOwner::Unmapped)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_block_is_never_mapped() {
        let mut space = AddressSpace::new(128);
        let base = space.map(RegionOwner::Local { vproc: 0 }, 1);
        assert_eq!(base, Addr::new(1024));
        assert_eq!(space.owner_of(Addr::NULL), RegionOwner::Unmapped);
        assert_eq!(space.owner_of(Addr::new(8)), RegionOwner::Unmapped);
    }

    #[test]
    fn regions_are_disjoint_and_resolvable() {
        let mut space = AddressSpace::new(128);
        let a = space.map(RegionOwner::Local { vproc: 0 }, 2);
        let b = space.map(RegionOwner::Global { chunk: ChunkId(3) }, 1);
        assert_eq!(space.owner_of(a), RegionOwner::Local { vproc: 0 });
        assert_eq!(
            space.owner_of(a.add_words(2 * 128 - 1)),
            RegionOwner::Local { vproc: 0 }
        );
        assert_eq!(space.owner_of(b), RegionOwner::Global { chunk: ChunkId(3) });
        assert_eq!(b.raw(), a.raw() + 2 * 128 * 8);
        assert_eq!(space.mapped_blocks(), 3);
    }

    #[test]
    fn addresses_beyond_mapping_are_unmapped() {
        let space = AddressSpace::new(64);
        assert_eq!(space.owner_of(Addr::new(1 << 30)), RegionOwner::Unmapped);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_block_size_rejected() {
        let _ = AddressSpace::new(0);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn zero_length_mapping_rejected() {
        let mut space = AddressSpace::new(64);
        let _ = space.map(RegionOwner::Local { vproc: 0 }, 0);
    }

    #[test]
    #[should_panic(expected = "unmapped owner")]
    fn mapping_to_unmapped_rejected() {
        let mut space = AddressSpace::new(64);
        let _ = space.map(RegionOwner::Unmapped, 1);
    }
}
