//! Per-vproc local heaps with Appel's semi-generational layout
//! (paper §3.1, §3.3, Figures 2 and 3).
//!
//! A local heap is a fixed-size region sized to fit in the node's L3 cache.
//! It is divided into:
//!
//! ```text
//!   0            young_start      old_top        nursery_start        size
//!   +----------------+----------------+---------------+----------------+
//!   |   old data     |   young data   |   (reserve)   |    nursery     |
//!   +----------------+----------------+---------------+----------------+
//! ```
//!
//! * New objects are bump-allocated in the **nursery**.
//! * A **minor** collection copies live nursery objects to the end of the
//!   old-data area (they become the *young data*), then the remaining free
//!   space is split in half and the upper half becomes the new nursery
//!   (Figure 2). The lower half is the reserve that guarantees the next
//!   minor collection always has room for survivors.
//! * A **major** collection copies the live *old* data (everything below
//!   `young_start`) to the global heap and then slides the young data down
//!   to the bottom of the local heap (Figure 3).
//!
//! Because the language is mutation-free, objects only ever point to older
//! objects, so no remembered sets or write barriers are needed; the only
//! pointers into the nursery are the vproc's own roots.

use crate::addr::{Addr, Word, WORD_BYTES};
use crate::error::HeapError;
use crate::header::Header;
use mgc_numa::NodeId;
use serde::{Deserialize, Serialize};

/// Which part of a local heap an address falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalRegion {
    /// The old-data area `[0, young_start)` — candidates for promotion at
    /// the next major collection.
    Old,
    /// The young-data area `[young_start, old_top)` — data copied by the
    /// most recent minor collection; exempt from the next major collection.
    Young,
    /// The reserve gap between the old-data area and the nursery.
    Reserve,
    /// The allocated part of the nursery.
    Nursery,
    /// Unallocated nursery space.
    NurseryFree,
}

/// Statistics maintained by a local heap across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalHeapStats {
    /// Total words ever allocated in the nursery.
    pub nursery_allocated_words: u64,
    /// Number of objects ever allocated in the nursery.
    pub nursery_allocated_objects: u64,
}

/// A per-vproc local heap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalHeap {
    vproc: usize,
    node: NodeId,
    base: Addr,
    data: Vec<Word>,
    /// End of the old-data area (word offset).
    old_top: usize,
    /// Start of the young-data area (word offset); `young_start <= old_top`.
    young_start: usize,
    /// Start of the nursery (word offset).
    nursery_start: usize,
    /// Next free nursery word (word offset).
    nursery_alloc: usize,
    stats: LocalHeapStats,
}

impl LocalHeap {
    /// Creates a local heap of `size_words` words for vproc `vproc`, based at
    /// address `base`, physically backed by memory on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `size_words` is too small to be useful (< 64 words).
    pub fn new(vproc: usize, node: NodeId, base: Addr, size_words: usize) -> Self {
        assert!(
            size_words >= 64,
            "local heap of {size_words} words is too small"
        );
        let mut heap = LocalHeap {
            vproc,
            node,
            base,
            data: vec![0; size_words],
            old_top: 0,
            young_start: 0,
            nursery_start: 0,
            nursery_alloc: 0,
            stats: LocalHeapStats::default(),
        };
        heap.recompute_nursery();
        heap
    }

    /// The owning vproc's index.
    pub fn vproc(&self) -> usize {
        self.vproc
    }

    /// The NUMA node backing this heap's pages.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Re-places the heap's pages on a different node (placement policies
    /// other than local allocation do this at creation time).
    pub fn set_node(&mut self, node: NodeId) {
        self.node = node;
    }

    /// Base address of the heap.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Total size in words.
    pub fn size_words(&self) -> usize {
        self.data.len()
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * WORD_BYTES
    }

    /// Lifetime allocation statistics.
    pub fn stats(&self) -> LocalHeapStats {
        self.stats
    }

    /// End of the old-data area, as a word offset.
    pub fn old_top(&self) -> usize {
        self.old_top
    }

    /// Start of the young-data area, as a word offset.
    pub fn young_start(&self) -> usize {
        self.young_start
    }

    /// Start of the nursery, as a word offset.
    pub fn nursery_start(&self) -> usize {
        self.nursery_start
    }

    /// Next free nursery slot, as a word offset.
    pub fn nursery_alloc(&self) -> usize {
        self.nursery_alloc
    }

    /// Words already allocated in the nursery.
    pub fn nursery_used_words(&self) -> usize {
        self.nursery_alloc - self.nursery_start
    }

    /// Words still free in the nursery.
    pub fn nursery_free_words(&self) -> usize {
        self.data.len() - self.nursery_alloc
    }

    /// Size of the current nursery in words.
    pub fn nursery_size_words(&self) -> usize {
        self.data.len() - self.nursery_start
    }

    /// Words of old plus young data.
    pub fn occupied_words(&self) -> usize {
        self.old_top
    }

    /// True if `addr` is inside this heap's address range.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.base.add_words(self.data.len())
    }

    /// Word offset of `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not inside this heap.
    pub fn offset_of(&self, addr: Addr) -> usize {
        assert!(
            self.contains(addr),
            "{addr:?} is not inside vproc {}'s local heap",
            self.vproc
        );
        addr.words_from(self.base)
    }

    /// The address of word offset `offset`.
    pub fn addr_of(&self, offset: usize) -> Addr {
        self.base.add_words(offset)
    }

    /// Which region word offset `offset` falls in.
    pub fn region_of_offset(&self, offset: usize) -> LocalRegion {
        if offset < self.young_start {
            LocalRegion::Old
        } else if offset < self.old_top {
            LocalRegion::Young
        } else if offset < self.nursery_start {
            LocalRegion::Reserve
        } else if offset < self.nursery_alloc {
            LocalRegion::Nursery
        } else {
            LocalRegion::NurseryFree
        }
    }

    /// Which region `addr` falls in.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not inside this heap.
    pub fn region_of(&self, addr: Addr) -> LocalRegion {
        self.region_of_offset(self.offset_of(addr))
    }

    /// Reads the word at word offset `offset`.
    pub fn read(&self, offset: usize) -> Word {
        self.data[offset]
    }

    /// Writes the word at word offset `offset`.
    pub fn write(&mut self, offset: usize, value: Word) {
        self.data[offset] = value;
    }

    /// Bump-allocates an object in the nursery. Returns the payload address.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NurseryFull`] if the nursery cannot hold the
    /// object; the caller should run a minor collection and retry.
    pub fn alloc(&mut self, header: Word, payload: &[Word]) -> Result<Addr, HeapError> {
        assert!(
            !payload.is_empty(),
            "empty objects are not supported; allocate a one-word raw object instead"
        );
        let total = payload.len() + 1;
        if self.nursery_free_words() < total {
            return Err(HeapError::NurseryFull {
                requested_words: total,
                free_words: self.nursery_free_words(),
            });
        }
        let header_offset = self.nursery_alloc;
        self.data[header_offset] = header;
        self.data[header_offset + 1..header_offset + 1 + payload.len()].copy_from_slice(payload);
        self.nursery_alloc += total;
        self.stats.nursery_allocated_words += total as u64;
        self.stats.nursery_allocated_objects += 1;
        Ok(self.addr_of(header_offset + 1))
    }

    /// Bump-allocates an object at the end of the old-data area. This is how
    /// a minor collection copies nursery survivors (they become young data).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OldAreaFull`] if the object would overrun the
    /// nursery; the Appel reserve normally prevents this.
    pub fn alloc_in_old(&mut self, header: Word, payload: &[Word]) -> Result<Addr, HeapError> {
        assert!(
            !payload.is_empty(),
            "empty objects are not supported; allocate a one-word raw object instead"
        );
        let total = payload.len() + 1;
        if self.old_top + total > self.nursery_start {
            return Err(HeapError::OldAreaFull {
                requested_words: total,
            });
        }
        let header_offset = self.old_top;
        self.data[header_offset] = header;
        self.data[header_offset + 1..header_offset + 1 + payload.len()].copy_from_slice(payload);
        self.old_top += total;
        Ok(self.addr_of(header_offset + 1))
    }

    /// Marks the start of a minor collection: everything currently in the
    /// old-data area ceases to be young; the survivors about to be copied in
    /// become the new young data.
    pub fn begin_minor(&mut self) {
        self.young_start = self.old_top;
    }

    /// Finishes a minor collection: discards the nursery contents and
    /// re-divides the free space, with the upper half becoming the new
    /// nursery (Figure 2).
    pub fn finish_minor(&mut self) {
        self.recompute_nursery();
    }

    /// Finishes a major collection. `new_old_top` is the end of the slid
    /// young data (see [`LocalHeap::slide_young_to_bottom`]); the free space
    /// above it is re-divided as after a minor collection.
    pub fn finish_major(&mut self) {
        self.recompute_nursery();
    }

    /// Slides the young-data area down to the bottom of the heap (Figure 3,
    /// the "Move" arrow), after the old-data area has been evacuated to the
    /// global heap. Returns the number of words the data moved, so the
    /// caller can relocate pointers into the young area.
    ///
    /// After the slide the young data occupies `[0, old_top)` and the
    /// young/old boundary is reset so the kept data remains exempt from
    /// promotion until the next minor collection redefines it.
    pub fn slide_young_to_bottom(&mut self) -> usize {
        let delta = self.young_start;
        if delta == 0 {
            return 0;
        }
        let len = self.old_top - self.young_start;
        self.data.copy_within(self.young_start..self.old_top, 0);
        // Make the vacated range fail fast if something still points there.
        for w in &mut self.data[len..self.old_top] {
            *w = 0;
        }
        self.old_top = len;
        self.young_start = 0;
        delta
    }

    /// Empties the entire local heap (used by tests and by vproc shutdown).
    pub fn clear(&mut self) {
        self.old_top = 0;
        self.young_start = 0;
        self.data.fill(0);
        self.recompute_nursery();
    }

    /// Iterates over the objects in `[from, to)` word offsets, in layout
    /// order, yielding `(payload_addr, header)`. The range must start at an
    /// object header.
    pub fn objects_in(&self, from: usize, to: usize) -> LocalObjects<'_> {
        LocalObjects {
            heap: self,
            offset: from,
            end: to,
        }
    }

    /// Iterates over all allocated nursery objects.
    pub fn nursery_objects(&self) -> LocalObjects<'_> {
        self.objects_in(self.nursery_start, self.nursery_alloc)
    }

    /// Iterates over the young-data objects.
    pub fn young_objects(&self) -> LocalObjects<'_> {
        self.objects_in(self.young_start, self.old_top)
    }

    /// Iterates over the old-data objects (excluding young data).
    pub fn old_objects(&self) -> LocalObjects<'_> {
        self.objects_in(0, self.young_start)
    }

    fn recompute_nursery(&mut self) {
        // The nursery gets the upper half of the free space. Rounding the
        // reserve *up* guarantees the reserve is never smaller than the
        // nursery, so a minor collection always has room for its survivors.
        let free = self.data.len() - self.old_top;
        self.nursery_start = self.old_top + free.div_ceil(2);
        self.nursery_alloc = self.nursery_start;
    }
}

/// Iterator over objects in a region of a local heap; see
/// [`LocalHeap::objects_in`].
#[derive(Debug)]
pub struct LocalObjects<'a> {
    heap: &'a LocalHeap,
    offset: usize,
    end: usize,
}

impl Iterator for LocalObjects<'_> {
    type Item = (Addr, Header);

    fn next(&mut self) -> Option<Self::Item> {
        while self.offset < self.end {
            let word = self.heap.data[self.offset];
            if let Some(header) = Header::decode(word) {
                let addr = self.heap.addr_of(self.offset + 1);
                self.offset += header.total_words();
                return Some((addr, header));
            }
            // Forwarded (dead) object: the evacuation saved the original
            // header in the first payload word so we can skip its footprint
            // without yielding it.
            let saved = Header::decode(self.heap.data[self.offset + 1])
                .expect("forwarded object is missing its saved header");
            self.offset += saved.total_words();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::ObjectKind;

    fn heap() -> LocalHeap {
        LocalHeap::new(0, NodeId::new(1), Addr::new(1 << 22), 1024)
    }

    fn raw_header(len: u64) -> Word {
        Header::new(ObjectKind::Raw, len).encode()
    }

    #[test]
    fn fresh_heap_geometry() {
        let h = heap();
        assert_eq!(h.old_top(), 0);
        assert_eq!(h.young_start(), 0);
        assert_eq!(h.nursery_start(), 512);
        assert_eq!(h.nursery_size_words(), 512);
        assert_eq!(h.nursery_used_words(), 0);
        assert_eq!(h.size_bytes(), 1024 * 8);
    }

    #[test]
    fn nursery_allocation_bumps() {
        let mut h = heap();
        let a = h.alloc(raw_header(2), &[1, 2]).unwrap();
        let b = h.alloc(raw_header(1), &[3]).unwrap();
        assert_eq!(h.region_of(a), LocalRegion::Nursery);
        assert_eq!(h.region_of(b), LocalRegion::Nursery);
        assert_eq!(b.words_from(a), 3);
        assert_eq!(h.nursery_used_words(), 5);
        assert_eq!(h.stats().nursery_allocated_objects, 2);
        assert_eq!(h.stats().nursery_allocated_words, 5);
    }

    #[test]
    fn nursery_overflow_reports_free_space() {
        let mut h = heap();
        let payload = vec![0u64; 400];
        h.alloc(raw_header(400), &payload).unwrap();
        let err = h.alloc(raw_header(400), &payload).unwrap_err();
        assert!(matches!(err, HeapError::NurseryFull { .. }));
    }

    #[test]
    fn minor_cycle_moves_survivors_to_young() {
        let mut h = heap();
        h.alloc(raw_header(2), &[1, 2]).unwrap();
        h.begin_minor();
        // Simulate the collector copying one survivor.
        let copied = h.alloc_in_old(raw_header(2), &[1, 2]).unwrap();
        h.finish_minor();
        assert_eq!(h.region_of(copied), LocalRegion::Young);
        assert_eq!(h.old_top(), 3);
        assert_eq!(h.young_start(), 0);
        // Nursery was re-divided above the survivors: free = 1021, upper half.
        assert_eq!(h.nursery_start(), 3 + (1024usize - 3).div_ceil(2));
        assert_eq!(h.nursery_used_words(), 0);
    }

    #[test]
    fn second_minor_redefines_young() {
        let mut h = heap();
        h.begin_minor();
        h.alloc_in_old(raw_header(1), &[9]).unwrap();
        h.finish_minor();
        h.begin_minor();
        let survivor2 = h.alloc_in_old(raw_header(1), &[8]).unwrap();
        h.finish_minor();
        // First survivor is now old, second is young.
        assert_eq!(h.region_of_offset(1), LocalRegion::Old);
        assert_eq!(h.region_of(survivor2), LocalRegion::Young);
        assert_eq!(h.young_start(), 2);
        assert_eq!(h.old_top(), 4);
    }

    #[test]
    fn slide_young_to_bottom_moves_data_and_geometry() {
        let mut h = heap();
        // Two minor cycles: one old object, one young object.
        h.begin_minor();
        h.alloc_in_old(raw_header(1), &[11]).unwrap();
        h.finish_minor();
        h.begin_minor();
        h.alloc_in_old(raw_header(2), &[21, 22]).unwrap();
        h.finish_minor();
        assert_eq!(h.young_start(), 2);
        assert_eq!(h.old_top(), 5);

        // Major collection: pretend the old object was evacuated, then slide.
        let delta = h.slide_young_to_bottom();
        assert_eq!(delta, 2);
        assert_eq!(h.young_start(), 0);
        assert_eq!(h.old_top(), 3);
        // The young object's payload moved to offsets 1..3.
        assert_eq!(h.read(1), 21);
        assert_eq!(h.read(2), 22);
        h.finish_major();
        assert_eq!(h.nursery_start(), 3 + (1024usize - 3).div_ceil(2));
    }

    #[test]
    fn slide_with_no_old_data_is_noop() {
        let mut h = heap();
        h.begin_minor();
        h.alloc_in_old(raw_header(1), &[5]).unwrap();
        h.finish_minor();
        // young_start == 0 here because there was no pre-existing old data.
        assert_eq!(h.slide_young_to_bottom(), 0);
        assert_eq!(h.read(1), 5);
    }

    #[test]
    fn old_area_overflow_detected() {
        let mut h = heap();
        h.begin_minor();
        let payload = vec![0u64; 600];
        assert!(matches!(
            h.alloc_in_old(raw_header(600), &payload),
            Err(HeapError::OldAreaFull { .. })
        ));
    }

    #[test]
    fn object_iterators_walk_regions() {
        let mut h = heap();
        let a = h.alloc(raw_header(1), &[1]).unwrap();
        let b = h.alloc(raw_header(2), &[2, 3]).unwrap();
        let nursery: Vec<_> = h.nursery_objects().map(|(addr, _)| addr).collect();
        assert_eq!(nursery, vec![a, b]);
        assert_eq!(h.young_objects().count(), 0);
        assert_eq!(h.old_objects().count(), 0);
    }

    #[test]
    fn regions_partition_the_heap() {
        let mut h = heap();
        h.begin_minor();
        h.alloc_in_old(raw_header(1), &[1]).unwrap();
        h.finish_minor();
        h.alloc(raw_header(1), &[2]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for off in 0..h.size_words() {
            seen.insert(h.region_of_offset(off));
        }
        assert!(seen.contains(&LocalRegion::Young));
        assert!(seen.contains(&LocalRegion::Reserve));
        assert!(seen.contains(&LocalRegion::Nursery));
        assert!(seen.contains(&LocalRegion::NurseryFree));
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = heap();
        h.alloc(raw_header(1), &[1]).unwrap();
        h.begin_minor();
        h.alloc_in_old(raw_header(1), &[1]).unwrap();
        h.finish_minor();
        h.clear();
        assert_eq!(h.old_top(), 0);
        assert_eq!(h.nursery_used_words(), 0);
        assert_eq!(h.nursery_start(), 512);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_heap_rejected() {
        let _ = LocalHeap::new(0, NodeId::new(0), Addr::new(0), 8);
    }

    #[test]
    fn contains_and_addresses() {
        let h = heap();
        let inside = h.addr_of(10);
        assert!(h.contains(inside));
        assert_eq!(h.offset_of(inside), 10);
        assert!(!h.contains(Addr::new(8)));
    }
}
