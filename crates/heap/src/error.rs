//! Error types for heap operations.

use crate::addr::Addr;
use std::error::Error;
use std::fmt;

/// Errors produced by heap allocation and access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The vproc's nursery has no room for the requested allocation; the
    /// caller must run a minor collection and retry.
    NurseryFull {
        /// Words requested (including the header word).
        requested_words: usize,
        /// Words still free in the nursery.
        free_words: usize,
    },
    /// The old-data area of a local heap has no room; this indicates the
    /// local heap is too small for the survivors of a minor collection.
    OldAreaFull {
        /// Words requested (including the header word).
        requested_words: usize,
    },
    /// The vproc's current global-heap chunk has no room; the caller must
    /// acquire a fresh chunk (this is the synchronisation point described in
    /// §3.3) and retry.
    ChunkFull {
        /// Words requested (including the header word).
        requested_words: usize,
    },
    /// The vproc has no current global-heap chunk at all.
    NoCurrentChunk,
    /// An object larger than a global-heap chunk was requested.
    ObjectTooLarge {
        /// Words requested (including the header word).
        requested_words: usize,
        /// Maximum allocatable words.
        max_words: usize,
    },
    /// An address does not fall inside any mapped heap region.
    Unmapped {
        /// The offending address.
        addr: Addr,
    },
    /// A payload did not match its descriptor's declared size.
    PayloadSizeMismatch {
        /// Words the descriptor declares.
        expected: usize,
        /// Words supplied.
        supplied: usize,
    },
    /// An unknown mixed-object descriptor ID was used.
    UnknownDescriptor {
        /// The offending header ID.
        id: u16,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::NurseryFull {
                requested_words,
                free_words,
            } => write!(
                f,
                "nursery full: requested {requested_words} words, {free_words} free"
            ),
            HeapError::OldAreaFull { requested_words } => {
                write!(f, "old-data area full: requested {requested_words} words")
            }
            HeapError::ChunkFull { requested_words } => {
                write!(
                    f,
                    "global-heap chunk full: requested {requested_words} words"
                )
            }
            HeapError::NoCurrentChunk => write!(f, "vproc has no current global-heap chunk"),
            HeapError::ObjectTooLarge {
                requested_words,
                max_words,
            } => write!(
                f,
                "object of {requested_words} words exceeds the maximum of {max_words}"
            ),
            HeapError::Unmapped { addr } => write!(f, "address {addr} is not mapped"),
            HeapError::PayloadSizeMismatch { expected, supplied } => write!(
                f,
                "payload of {supplied} words does not match descriptor size {expected}"
            ),
            HeapError::UnknownDescriptor { id } => {
                write!(f, "unknown object descriptor id {id}")
            }
        }
    }
}

impl Error for HeapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HeapError::NurseryFull {
            requested_words: 10,
            free_words: 3,
        };
        assert!(e.to_string().contains("nursery full"));
        assert!(e.to_string().contains("10"));
        let e = HeapError::Unmapped {
            addr: Addr::new(64),
        };
        assert!(e.to_string().contains("0x40"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<HeapError>();
    }
}
