//! Simulated heap addresses and machine words.
//!
//! The heap lives in a flat, word-aligned simulated address space. An
//! [`Addr`] is a byte address in that space; address `0` is the null
//! reference. Object references always point at the first payload word of an
//! object; the object's header word sits immediately below the referenced
//! address (at `addr - 8`), as in the Manticore runtime.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 64-bit machine word: either a header, a pointer, or raw data.
pub type Word = u64;

/// Number of bytes in a [`Word`].
pub const WORD_BYTES: usize = 8;

/// A byte address in the simulated heap address space.
///
/// Addresses are always word-aligned. `Addr::NULL` (zero) is the null
/// reference.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Addr(u64);

impl Addr {
    /// The null reference.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw byte offset.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is not word-aligned.
    pub fn new(raw: u64) -> Self {
        assert!(
            raw.is_multiple_of(WORD_BYTES as u64),
            "heap addresses must be word-aligned, got {raw:#x}"
        );
        Addr(raw)
    }

    /// The raw byte value of the address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// True if this is the null reference.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The address `count` words above this one.
    pub fn add_words(self, count: usize) -> Addr {
        Addr(self.0 + (count * WORD_BYTES) as u64)
    }

    /// The address `count` words below this one.
    ///
    /// # Panics
    ///
    /// Panics if the result would underflow.
    pub fn sub_words(self, count: usize) -> Addr {
        Addr(
            self.0
                .checked_sub((count * WORD_BYTES) as u64)
                .expect("address underflow"),
        )
    }

    /// Distance in words from `base` to this address.
    ///
    /// # Panics
    ///
    /// Panics if `self < base`.
    pub fn words_from(self, base: Addr) -> usize {
        assert!(self.0 >= base.0, "address {self:?} is below base {base:?}");
        ((self.0 - base.0) / WORD_BYTES as u64) as usize
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Addr(null)")
        } else {
            write!(f, "Addr({:#x})", self.0)
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<Addr> for Word {
    fn from(value: Addr) -> Word {
        value.0
    }
}

/// Interprets a word as a possible heap pointer.
///
/// Returns `None` for the null word; otherwise the word must be a
/// word-aligned address.
///
/// # Examples
///
/// ```
/// # use mgc_heap::{word_as_pointer, Addr};
/// assert_eq!(word_as_pointer(0), None);
/// assert_eq!(word_as_pointer(64), Some(Addr::new(64)));
/// ```
pub fn word_as_pointer(word: Word) -> Option<Addr> {
    if word == 0 {
        None
    } else {
        Some(Addr::new(word))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_and_alignment() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(8).is_null());
        assert_eq!(Addr::new(16).raw(), 16);
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_address_rejected() {
        let _ = Addr::new(13);
    }

    #[test]
    fn word_arithmetic() {
        let a = Addr::new(64);
        assert_eq!(a.add_words(2), Addr::new(80));
        assert_eq!(a.sub_words(1), Addr::new(56));
        assert_eq!(a.add_words(3).words_from(a), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_words_underflow_panics() {
        let _ = Addr::new(8).sub_words(2);
    }

    #[test]
    #[should_panic(expected = "below base")]
    fn words_from_below_base_panics() {
        let _ = Addr::new(8).words_from(Addr::new(64));
    }

    #[test]
    fn pointer_interpretation() {
        assert_eq!(word_as_pointer(0), None);
        assert_eq!(word_as_pointer(4096), Some(Addr::new(4096)));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Addr::NULL), "Addr(null)");
        assert_eq!(format!("{:?}", Addr::new(256)), "Addr(0x100)");
        assert_eq!(Addr::new(256).to_string(), "0x100");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Addr::new(8) < Addr::new(16));
        assert_eq!(Word::from(Addr::new(24)), 24);
    }
}
