//! Global-heap chunks (paper §3.1, §3.4).
//!
//! The global heap is organised as a collection of fixed-size chunks. Each
//! vproc owns a *current* chunk that it bump-allocates promotions and major
//! collection survivors into. The memory system tracks the NUMA node every
//! chunk was placed on and preserves that node affinity when chunks are
//! reused, which is the heart of the paper's NUMA story.

use crate::addr::{Addr, Word, WORD_BYTES};
use crate::error::HeapError;
use mgc_numa::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a global-heap chunk.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChunkId(pub u32);

impl ChunkId {
    /// The raw index of this chunk.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk{}", self.0)
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk{}", self.0)
    }
}

/// Lifecycle state of a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkState {
    /// On a per-node free list, available for reuse.
    Free,
    /// Owned by a vproc as its current allocation chunk.
    Current {
        /// The owning vproc index.
        vproc: usize,
    },
    /// Filled (no longer anyone's current chunk), holding live global data.
    Filled,
    /// Part of from-space during a global collection.
    FromSpace,
    /// Part of to-space during a global collection (newly filled).
    ToSpace,
}

/// One fixed-size chunk of the global heap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Chunk {
    id: ChunkId,
    base: Addr,
    node: NodeId,
    state: ChunkState,
    data: Vec<Word>,
    /// Next free word offset (bump pointer).
    top: usize,
    /// Cheney scan pointer, in word offset, used during global collection.
    scan: usize,
}

impl Chunk {
    /// Creates a fresh, empty chunk of `size_words` words based at `base` and
    /// physically located on `node`.
    pub fn new(id: ChunkId, base: Addr, node: NodeId, size_words: usize) -> Self {
        Chunk {
            id,
            base,
            node,
            state: ChunkState::Free,
            data: vec![0; size_words],
            top: 0,
            scan: 0,
        }
    }

    /// This chunk's identifier.
    pub fn id(&self) -> ChunkId {
        self.id
    }

    /// The base address of the chunk.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The NUMA node whose memory backs this chunk.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Re-places the chunk on a different node (used when a free chunk is
    /// recycled under a placement policy that ignores affinity — the ablation
    /// case).
    pub fn set_node(&mut self, node: NodeId) {
        self.node = node;
    }

    /// The chunk's lifecycle state.
    pub fn state(&self) -> ChunkState {
        self.state
    }

    /// Sets the lifecycle state.
    pub fn set_state(&mut self, state: ChunkState) {
        self.state = state;
    }

    /// Capacity in words.
    pub fn size_words(&self) -> usize {
        self.data.len()
    }

    /// Capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * WORD_BYTES
    }

    /// Words currently allocated.
    pub fn used_words(&self) -> usize {
        self.top
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> usize {
        self.top * WORD_BYTES
    }

    /// Words still free.
    pub fn free_words(&self) -> usize {
        self.data.len() - self.top
    }

    /// True if `addr` falls inside this chunk's address range.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.base.add_words(self.data.len())
    }

    /// The word offset of `addr` within this chunk.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not inside this chunk.
    pub fn offset_of(&self, addr: Addr) -> usize {
        assert!(self.contains(addr), "{addr:?} is not inside {:?}", self.id);
        addr.words_from(self.base)
    }

    /// Reads the word at word offset `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    pub fn read(&self, offset: usize) -> Word {
        self.data[offset]
    }

    /// Writes the word at word offset `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    pub fn write(&mut self, offset: usize, value: Word) {
        self.data[offset] = value;
    }

    /// Bump-allocates an object with the given encoded header and payload.
    /// Returns the address of the first payload word.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::ChunkFull`] if there is not enough room.
    pub fn alloc(&mut self, header: Word, payload: &[Word]) -> Result<Addr, HeapError> {
        assert!(
            !payload.is_empty(),
            "empty objects are not supported; allocate a one-word raw object instead"
        );
        let total = payload.len() + 1;
        if self.free_words() < total {
            return Err(HeapError::ChunkFull {
                requested_words: total,
            });
        }
        let header_offset = self.top;
        self.data[header_offset] = header;
        self.data[header_offset + 1..header_offset + 1 + payload.len()].copy_from_slice(payload);
        self.top += total;
        Ok(self.base.add_words(header_offset + 1))
    }

    /// Resets the chunk to empty (used when a chunk returns to the free
    /// pool after a global collection). The node affinity is preserved.
    pub fn reset(&mut self) {
        self.top = 0;
        self.scan = 0;
        self.state = ChunkState::Free;
        // Zeroing is not strictly required, but it makes stale-pointer bugs
        // fail fast in tests.
        self.data.fill(0);
    }

    /// The Cheney scan pointer (word offset of the next unscanned header).
    pub fn scan(&self) -> usize {
        self.scan
    }

    /// Sets the Cheney scan pointer.
    pub fn set_scan(&mut self, scan: usize) {
        self.scan = scan;
    }

    /// True if every allocated object in this chunk has been scanned.
    pub fn fully_scanned(&self) -> bool {
        self.scan >= self.top
    }

    /// Iterates over the addresses of all objects allocated in this chunk, in
    /// allocation order. Each item is the object (payload) address.
    pub fn objects(&self) -> ChunkObjects<'_> {
        ChunkObjects {
            chunk: self,
            offset: 0,
        }
    }
}

/// Iterator over the objects of a chunk; see [`Chunk::objects`].
#[derive(Debug)]
pub struct ChunkObjects<'a> {
    chunk: &'a Chunk,
    offset: usize,
}

impl Iterator for ChunkObjects<'_> {
    type Item = Addr;

    fn next(&mut self) -> Option<Addr> {
        while self.offset < self.chunk.top {
            let header_word = self.chunk.data[self.offset];
            if let Some(header) = crate::header::Header::decode(header_word) {
                let addr = self.chunk.base.add_words(self.offset + 1);
                self.offset += header.total_words();
                return Some(addr);
            }
            // Forwarded (dead) object: skip over it using the header saved in
            // the first payload word by the evacuation.
            let saved = crate::header::Header::decode(self.chunk.data[self.offset + 1])
                .expect("forwarded object is missing its saved header");
            self.offset += saved.total_words();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{Header, ObjectKind};

    fn chunk() -> Chunk {
        Chunk::new(ChunkId(0), Addr::new(1 << 20), NodeId::new(2), 128)
    }

    #[test]
    fn alloc_lays_out_header_then_payload() {
        let mut c = chunk();
        let h = Header::new(ObjectKind::Raw, 3).encode();
        let addr = c.alloc(h, &[10, 20, 30]).unwrap();
        assert_eq!(addr, Addr::new((1 << 20) + 8));
        assert_eq!(c.read(0), h);
        assert_eq!(c.read(1), 10);
        assert_eq!(c.read(3), 30);
        assert_eq!(c.used_words(), 4);
        assert_eq!(c.free_words(), 124);
    }

    #[test]
    fn alloc_rejects_overflow() {
        let mut c = chunk();
        let h = Header::new(ObjectKind::Raw, 200).encode();
        let payload = vec![0u64; 200];
        assert_eq!(
            c.alloc(h, &payload),
            Err(HeapError::ChunkFull {
                requested_words: 201
            })
        );
    }

    #[test]
    fn contains_and_offset() {
        let c = chunk();
        assert!(c.contains(Addr::new(1 << 20)));
        assert!(c.contains(Addr::new((1 << 20) + 8 * 127)));
        assert!(!c.contains(Addr::new((1 << 20) + 8 * 128)));
        assert_eq!(c.offset_of(Addr::new((1 << 20) + 16)), 2);
    }

    #[test]
    #[should_panic(expected = "not inside")]
    fn offset_of_outside_panics() {
        chunk().offset_of(Addr::new(8));
    }

    #[test]
    fn reset_clears_allocation_but_keeps_node() {
        let mut c = chunk();
        c.alloc(Header::new(ObjectKind::Raw, 1).encode(), &[7])
            .unwrap();
        c.set_state(ChunkState::Filled);
        c.reset();
        assert_eq!(c.used_words(), 0);
        assert_eq!(c.state(), ChunkState::Free);
        assert_eq!(c.node(), NodeId::new(2));
        assert_eq!(c.read(0), 0);
    }

    #[test]
    fn object_iteration_in_allocation_order() {
        let mut c = chunk();
        let a = c
            .alloc(Header::new(ObjectKind::Raw, 2).encode(), &[1, 2])
            .unwrap();
        let b = c
            .alloc(Header::new(ObjectKind::Vector, 1).encode(), &[0])
            .unwrap();
        let objs: Vec<_> = c.objects().collect();
        assert_eq!(objs, vec![a, b]);
    }

    #[test]
    fn scan_pointer_tracks_progress() {
        let mut c = chunk();
        c.alloc(Header::new(ObjectKind::Raw, 2).encode(), &[1, 2])
            .unwrap();
        assert!(!c.fully_scanned());
        c.set_scan(3);
        assert!(c.fully_scanned());
    }

    #[test]
    fn state_transitions() {
        let mut c = chunk();
        assert_eq!(c.state(), ChunkState::Free);
        c.set_state(ChunkState::Current { vproc: 4 });
        assert_eq!(c.state(), ChunkState::Current { vproc: 4 });
        c.set_state(ChunkState::FromSpace);
        assert_eq!(c.state(), ChunkState::FromSpace);
    }

    #[test]
    fn ids_display() {
        assert_eq!(ChunkId(7).to_string(), "chunk7");
        assert_eq!(format!("{:?}", ChunkId(7)), "chunk7");
        assert_eq!(ChunkId(7).index(), 7);
    }
}
