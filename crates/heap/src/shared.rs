//! The concurrent heap substrate for the real-threads execution backend.
//!
//! The discrete-event simulation owns every memory region from one thread,
//! so its [`Heap`](crate::Heap) can be a plain data structure. Running each
//! vproc on a real OS thread splits the picture exactly along the paper's
//! §3.3 synchronisation boundary:
//!
//! * each worker thread **owns** its [`LocalHeap`] outright — allocation,
//!   minor collections, and major collections touch only thread-local state
//!   and take **no locks at all**;
//! * the **global heap** is shared: chunks store their words in
//!   [`AtomicU64`]s (the mutator language is mutation-free, so global
//!   objects are immutable outside collections and plain acquire/release
//!   atomics suffice), the chunk pool is the lock-free Treiber-stack
//!   [`SharedChunkPool`] — so the promotion path's only synchronisation is
//!   a handful of CAS operations per chunk lease — and the chunk directory
//!   is an append-only list behind an [`RwLock`] that workers shadow with a
//!   thread-local cache so the common-case global read takes no lock.
//!
//! Address arithmetic replaces the simulation's
//! [`AddressSpace`](crate::AddressSpace): worker `w`'s local heap lives at
//! `LOCAL_BASE + w * local_span`, and the global heap is **partitioned by
//! NUMA node** — node `n`'s chunks live in the address band
//! `GLOBAL_BASE + n * NODE_SPAN_BYTES ..`, chunk `i` of that node at
//! `band_base + i * chunk_span`. Classifying an address *and finding the
//! node that backs it* are therefore pure arithmetic; no shared state, no
//! chunk-directory lookup.

use crate::addr::{Addr, Word, WORD_BYTES};
use crate::chunk::ChunkId;
use crate::descriptor::DescriptorTable;
use crate::error::HeapError;
use crate::gc_heap::GcHeap;
use crate::global::SharedChunkPool;
use crate::header::{Header, HeaderSlot, ObjectKind};
use crate::heap::{EvacTarget, HeapConfig, HeapStats, Space};
use crate::local::{LocalHeap, LocalRegion};
use mgc_numa::{NodeId, PlacementPolicy};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Base address of the first worker's local heap.
pub const LOCAL_BASE: u64 = 1 << 20;
/// Base address of the shared global heap (far above any local heap).
pub const GLOBAL_BASE: u64 = 1 << 44;
/// log2 of the *default* per-node global-heap address band
/// ([`HeapConfig::node_span_bytes`] can override the span per heap).
pub const NODE_SPAN_SHIFT: u32 = 38;
/// Default bytes of global-heap address space reserved per NUMA node
/// (256 GiB of *virtual* span — chunks are only mapped as they are
/// acquired). Because every node owns one contiguous band, `addr → node`
/// is a shift. Heaps sized from probed host memory pass their own
/// power-of-two span through [`HeapConfig::node_span_bytes`].
pub const NODE_SPAN_BYTES: u64 = 1 << NODE_SPAN_SHIFT;
/// Largest accepted per-node span (64 TiB): keeps
/// `GLOBAL_BASE + node * span + offset` inside `u64` for every
/// representable [`NodeId`].
pub const MAX_NODE_SPAN_SHIFT: u32 = 46;

/// The NUMA node whose address band contains the global-heap address
/// `addr`, by pure arithmetic. `None` for non-global addresses and for
/// addresses whose band index does not fit a [`NodeId`] (garbage pointers
/// far past any real machine's node count).
pub fn global_node_of(addr: Addr) -> Option<NodeId> {
    let raw = addr.raw();
    if raw < GLOBAL_BASE {
        return None;
    }
    let band = (raw - GLOBAL_BASE) >> NODE_SPAN_SHIFT;
    (band <= u64::from(u16::MAX)).then(|| NodeId::new(band as u16))
}

/// Chunks per directory segment. Small enough that a heap with a handful of
/// chunks wastes little, large enough that a GB-scale heap (hundreds of
/// thousands of chunks) stays at a few hundred segments.
pub const DIR_SEG_CHUNKS: usize = 512;

/// One append-only segment of a [`ChunkDirectory`]. Slots are `OnceLock`s:
/// a published entry never moves and never changes, so holders of a segment
/// `Arc` read it without any lock — including entries published *after*
/// they snapshotted the segment list.
#[derive(Debug)]
pub struct DirSegment {
    slots: Vec<std::sync::OnceLock<Arc<SharedChunk>>>,
}

impl DirSegment {
    fn new() -> Self {
        DirSegment {
            slots: (0..DIR_SEG_CHUNKS)
                .map(|_| std::sync::OnceLock::new())
                .collect(),
        }
    }

    /// The chunk in `slot`, if one has been published there.
    pub fn get(&self, slot: usize) -> Option<&Arc<SharedChunk>> {
        self.slots[slot].get()
    }
}

/// A growable chunk directory: an append-only list of fixed-size
/// [`DirSegment`]s. Unlike a flat `Vec`, growth *appends a segment* — no
/// existing entry is ever moved or reallocated — so readers holding segment
/// `Arc`s (worker thread-local caches, GC work-index snapshots) stay valid
/// across concurrent growth, and refreshing a snapshot clones only the
/// segment list (O(chunks / [`DIR_SEG_CHUNKS`])), not every chunk `Arc`.
#[derive(Debug)]
pub struct ChunkDirectory {
    segments: RwLock<Vec<Arc<DirSegment>>>,
    /// Published length: entries `0..len` are readable. Bumped with
    /// `Release` *after* the slot's `OnceLock` is set.
    len: AtomicUsize,
}

impl ChunkDirectory {
    fn new() -> Self {
        ChunkDirectory {
            segments: RwLock::new(Vec::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of published entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when no chunk has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The chunk at `index`, if published.
    pub fn get(&self, index: usize) -> Option<Arc<SharedChunk>> {
        if index >= self.len() {
            return None;
        }
        let segments = self.segments.read().expect("chunk directory poisoned");
        segments
            .get(index / DIR_SEG_CHUNKS)?
            .get(index % DIR_SEG_CHUNKS)
            .cloned()
    }

    /// Appends a chunk, growing by a fresh segment when the last one is
    /// full, and returns its index. Appends are serialised by the caller
    /// (the heap's acquire path holds the flat directory's append lock);
    /// concurrent readers are never blocked out of published entries.
    fn push(&self, chunk: Arc<SharedChunk>) -> usize {
        let index = self.len.load(Ordering::Relaxed);
        let (seg, slot) = (index / DIR_SEG_CHUNKS, index % DIR_SEG_CHUNKS);
        if slot == 0 {
            self.segments
                .write()
                .expect("chunk directory poisoned")
                .push(Arc::new(DirSegment::new()));
        }
        {
            let segments = self.segments.read().expect("chunk directory poisoned");
            segments[seg].slots[slot]
                .set(chunk)
                .expect("directory slots are published exactly once");
        }
        self.len.store(index + 1, Ordering::Release);
        index
    }

    /// A point-in-time view sharing the directory's segments.
    pub fn snapshot(&self) -> DirectorySnapshot {
        DirectorySnapshot {
            segments: self
                .segments
                .read()
                .expect("chunk directory poisoned")
                .clone(),
        }
    }

    /// Materialises the published entries as a flat vector (index order).
    pub fn to_vec(&self) -> Vec<Arc<SharedChunk>> {
        let len = self.len();
        let snapshot = self.snapshot();
        (0..len)
            .map(|i| {
                snapshot
                    .get(i)
                    .expect("published entries are readable")
                    .clone()
            })
            .collect()
    }
}

/// A lock-free view of a [`ChunkDirectory`] taken at some instant. Because
/// segments are append-only, a snapshot can also resolve entries published
/// *after* it was taken, as long as they landed in a segment it already
/// holds — which is what lets worker caches go many promotions between
/// refreshes.
#[derive(Debug, Clone, Default)]
pub struct DirectorySnapshot {
    segments: Vec<Arc<DirSegment>>,
}

impl DirectorySnapshot {
    /// The chunk at `index`, if it is visible through this snapshot.
    pub fn get(&self, index: usize) -> Option<&Arc<SharedChunk>> {
        self.segments
            .get(index / DIR_SEG_CHUNKS)?
            .get(index % DIR_SEG_CHUNKS)
    }
}

/// Lifecycle state of a shared chunk (the payload-free counterpart of
/// [`ChunkState`](crate::ChunkState); the owning vproc of a current chunk is
/// implicit in which worker holds the `Arc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SharedChunkState {
    /// On the free pool.
    Free = 0,
    /// Some worker's current allocation chunk.
    Current = 1,
    /// Filled with live data, nobody's current chunk.
    Filled = 2,
    /// From-space during a global collection.
    FromSpace = 3,
}

impl SharedChunkState {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => SharedChunkState::Free,
            1 => SharedChunkState::Current,
            2 => SharedChunkState::Filled,
            3 => SharedChunkState::FromSpace,
            other => unreachable!("invalid shared chunk state {other}"),
        }
    }
}

/// One fixed-size chunk of the shared global heap.
///
/// Words are atomics so that a worker can bump-allocate promotions into its
/// current chunk while other workers concurrently read objects already
/// published in the same chunk. A chunk has a single writer at any moment:
/// the worker holding it as its current chunk (or, during a global
/// collection, the worker that claimed it off the work index).
#[derive(Debug)]
pub struct SharedChunk {
    id: ChunkId,
    base: Addr,
    /// The chunk's NUMA node. Immutable: the node is baked into the chunk's
    /// address band, so a chunk can never migrate — when the affinity
    /// ablation hands a node-1 chunk to a node-0 worker, the memory stays
    /// on node 1 and the promotion is accounted as remote, exactly as real
    /// pages would behave.
    node: NodeId,
    state: AtomicU8,
    /// Bump pointer: next free word offset. Published with `Release` after
    /// the object's words are written, so an `Acquire` reader never sees a
    /// partially initialised object.
    top: AtomicUsize,
    /// Cheney scan pointer used by the parallel global collection.
    scan: AtomicUsize,
    data: Vec<AtomicU64>,
}

impl SharedChunk {
    fn new(id: ChunkId, base: Addr, node: NodeId, size_words: usize) -> Self {
        SharedChunk {
            id,
            base,
            node,
            state: AtomicU8::new(SharedChunkState::Free as u8),
            top: AtomicUsize::new(0),
            scan: AtomicUsize::new(0),
            data: (0..size_words).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// This chunk's identifier.
    pub fn id(&self) -> ChunkId {
        self.id
    }

    /// Base address of the chunk.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// The NUMA node whose address band (and, physically, whose DRAM) backs
    /// this chunk. Always equal to [`global_node_of`] of any address inside
    /// the chunk.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The chunk's lifecycle state.
    pub fn state(&self) -> SharedChunkState {
        SharedChunkState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Sets the lifecycle state.
    pub fn set_state(&self, state: SharedChunkState) {
        self.state.store(state as u8, Ordering::Release);
    }

    /// Capacity in words.
    pub fn size_words(&self) -> usize {
        self.data.len()
    }

    /// Words currently allocated (published).
    pub fn used_words(&self) -> usize {
        self.top.load(Ordering::Acquire)
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> usize {
        self.used_words() * WORD_BYTES
    }

    /// Words still free.
    pub fn free_words(&self) -> usize {
        self.data.len() - self.used_words()
    }

    /// True if `addr` lies inside this chunk.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.base.add_words(self.data.len())
    }

    /// Word offset of `addr` within the chunk.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the chunk.
    pub fn offset_of(&self, addr: Addr) -> usize {
        assert!(self.contains(addr), "{addr:?} is not inside {:?}", self.id);
        addr.words_from(self.base)
    }

    /// Reads the word at word offset `offset`.
    pub fn read(&self, offset: usize) -> Word {
        self.data[offset].load(Ordering::Acquire)
    }

    /// Writes the word at word offset `offset`.
    pub fn write(&self, offset: usize, value: Word) {
        self.data[offset].store(value, Ordering::Release);
    }

    /// Bump-allocates an object. Only the worker currently owning the chunk
    /// may call this (single writer); concurrent readers are fine.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::ChunkFull`] when the object does not fit.
    pub fn alloc(&self, header: Word, payload: &[Word]) -> Result<Addr, HeapError> {
        assert!(
            !payload.is_empty(),
            "empty objects are not supported; allocate a one-word raw object instead"
        );
        let total = payload.len() + 1;
        let top = self.top.load(Ordering::Relaxed);
        if self.data.len() - top < total {
            return Err(HeapError::ChunkFull {
                requested_words: total,
            });
        }
        self.data[top].store(header, Ordering::Release);
        for (i, &word) in payload.iter().enumerate() {
            self.data[top + 1 + i].store(word, Ordering::Release);
        }
        // Publish the object: readers that see the new top see every word.
        self.top.store(top + total, Ordering::Release);
        Ok(self.base.add_words(top + 1))
    }

    /// Atomically installs a forwarding pointer in the header slot of the
    /// object at `obj`, if the slot still holds `expected_header`.
    ///
    /// Used by the parallel global collection: when two workers race to
    /// evacuate the same from-space object, exactly one CAS succeeds; the
    /// loser's already-made copy becomes unreachable garbage and the loser
    /// returns the winner's address.
    ///
    /// # Errors
    ///
    /// Returns the winning forwarding address when the CAS loses.
    pub fn try_forward(
        &self,
        obj: Addr,
        expected_header: Word,
        new_addr: Addr,
    ) -> Result<(), Addr> {
        let slot = self.offset_of(obj.sub_words(1));
        match self.data[slot].compare_exchange(
            expected_header,
            new_addr.raw(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(current) => match HeaderSlot::decode(current) {
                HeaderSlot::Forwarded(winner) => Err(winner),
                HeaderSlot::Header(_) => unreachable!(
                    "header slot of {obj:?} changed to a different header during a collection"
                ),
            },
        }
    }

    /// The Cheney scan pointer.
    pub fn scan(&self) -> usize {
        self.scan.load(Ordering::Acquire)
    }

    /// Sets the Cheney scan pointer.
    pub fn set_scan(&self, scan: usize) {
        self.scan.store(scan, Ordering::Release);
    }

    /// Resets the chunk to empty and [`SharedChunkState::Free`].
    pub fn reset(&self) {
        self.top.store(0, Ordering::Release);
        self.scan.store(0, Ordering::Release);
        for word in &self.data {
            word.store(0, Ordering::Relaxed);
        }
        self.set_state(SharedChunkState::Free);
    }
}

/// The shared global heap of the real-threads backend, **partitioned by
/// NUMA node**: each node owns a contiguous address band (so `addr → node`
/// is arithmetic, see [`global_node_of`]), its own append-only chunk
/// directory, and its own lock-free Treiber free stack inside the
/// [`SharedChunkPool`]. A flat directory linearises every chunk for the
/// parallel collection's work index.
#[derive(Debug)]
pub struct SharedGlobalHeap {
    chunk_size_words: usize,
    num_nodes: usize,
    /// Which node's pool promotion chunks are leased from (see
    /// [`PlacementPolicy`]); fixed at construction. `Adaptive` is resolved
    /// per lease by the caller through [`SharedGlobalHeap::acquire_as`].
    placement: PlacementPolicy,
    /// Bytes of address band per node (a power of two; default
    /// [`NODE_SPAN_BYTES`]).
    node_span_bytes: u64,
    /// Flat, append-only directory in [`ChunkId`] order (the parallel GC's
    /// work index iterates it).
    chunks: ChunkDirectory,
    /// Per-node directories in address order: `by_node[n]` entry `i` is the
    /// chunk at `GLOBAL_BASE + n * node_span_bytes + i * chunk_size_bytes`.
    by_node: Vec<ChunkDirectory>,
    /// Serialises fresh-chunk mapping (id assignment + the two directory
    /// appends); pooled reuse never takes it.
    grow: std::sync::Mutex<()>,
    pool: SharedChunkPool,
    chunks_in_use: AtomicUsize,
    chunks_created: AtomicU64,
    /// Round-robin cursor for [`PlacementPolicy::Interleave`].
    interleave_cursor: AtomicUsize,
}

impl SharedGlobalHeap {
    /// Creates an empty shared global heap with the default
    /// ([`PlacementPolicy::NodeLocal`]) placement and the default
    /// [`NODE_SPAN_BYTES`] per-node address band.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size_words` or `num_nodes` is zero.
    pub fn new(chunk_size_words: usize, num_nodes: usize) -> Self {
        assert!(chunk_size_words > 0, "chunks must be non-empty");
        assert!(num_nodes > 0, "a machine must have at least one node");
        SharedGlobalHeap {
            chunk_size_words,
            num_nodes,
            placement: PlacementPolicy::NodeLocal,
            node_span_bytes: NODE_SPAN_BYTES,
            chunks: ChunkDirectory::new(),
            by_node: (0..num_nodes).map(|_| ChunkDirectory::new()).collect(),
            grow: std::sync::Mutex::new(()),
            pool: SharedChunkPool::new(num_nodes),
            chunks_in_use: AtomicUsize::new(0),
            chunks_created: AtomicU64::new(0),
            interleave_cursor: AtomicUsize::new(0),
        }
    }

    /// Sets the chunk-lease placement policy (builder-style; call before the
    /// heap is shared between threads).
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the per-node address-band span (builder-style; call before any
    /// chunk is mapped). Heaps sized from probed host memory pass the
    /// validated [`HeapConfig::node_span_bytes`] here.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a power of two, is smaller than one chunk,
    /// or exceeds `1 << `[`MAX_NODE_SPAN_SHIFT`] (callers validate through
    /// [`HeapGeometry`](crate::HeapGeometry) to get a typed error instead).
    pub fn with_node_span_bytes(mut self, bytes: u64) -> Self {
        assert!(
            bytes.is_power_of_two(),
            "the node span must be a power of two"
        );
        assert!(
            bytes >= self.chunk_size_bytes() as u64,
            "the node span must fit at least one chunk"
        );
        assert!(
            bytes <= 1 << MAX_NODE_SPAN_SHIFT,
            "the node span exceeds the supported maximum band"
        );
        self.node_span_bytes = bytes;
        self
    }

    /// The chunk-lease placement policy.
    pub fn placement(&self) -> PlacementPolicy {
        self.placement
    }

    /// Bytes of global-heap address band per node.
    pub fn node_span_bytes(&self) -> u64 {
        self.node_span_bytes
    }

    /// Resolves the node a new chunk lease should come from, given the
    /// requesting worker's preferred (consumer) node.
    pub fn place_node(&self, preferred: NodeId) -> NodeId {
        self.place_node_as(self.placement, preferred)
    }

    /// Resolves a lease node under an explicit *effective* policy. This is
    /// how [`PlacementPolicy::Adaptive`] reaches the heap: the runtime's
    /// controller resolves the adaptive mode to node-local or interleave
    /// first, so the heap only ever executes static behaviours (an
    /// unresolved `Adaptive` behaves as node-local, its cold-start mode).
    pub fn place_node_as(&self, effective: PlacementPolicy, preferred: NodeId) -> NodeId {
        match effective {
            PlacementPolicy::NodeLocal
            | PlacementPolicy::FirstTouch
            | PlacementPolicy::Adaptive => preferred,
            PlacementPolicy::Interleave => {
                let next = self.interleave_cursor.fetch_add(1, Ordering::Relaxed);
                NodeId::new((next % self.num_nodes) as u16)
            }
        }
    }

    /// Chunk size in words.
    pub fn chunk_size_words(&self) -> usize {
        self.chunk_size_words
    }

    /// Chunk size in bytes.
    pub fn chunk_size_bytes(&self) -> usize {
        self.chunk_size_words * WORD_BYTES
    }

    /// Number of NUMA nodes the free pool is segregated by.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The free pool (for affinity knobs and inspection).
    pub fn pool(&self) -> &SharedChunkPool {
        &self.pool
    }

    /// Total chunks ever created.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Chunks created from fresh address space.
    pub fn chunks_created(&self) -> u64 {
        self.chunks_created.load(Ordering::Relaxed)
    }

    /// Number of chunks currently in use (not on the free pool).
    pub fn chunks_in_use(&self) -> usize {
        self.chunks_in_use.load(Ordering::Acquire)
    }

    /// Bytes of chunk space in use — the global-collection trigger input
    /// (§3.4).
    pub fn bytes_in_use(&self) -> usize {
        self.chunks_in_use() * self.chunk_size_bytes()
    }

    /// A snapshot of the chunk directory.
    pub fn snapshot(&self) -> Vec<Arc<SharedChunk>> {
        self.chunks.to_vec()
    }

    /// The chunk at directory index `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn chunk_at(&self, index: usize) -> Arc<SharedChunk> {
        self.chunks
            .get(index)
            .expect("chunk index out of directory range")
    }

    /// Acquires a chunk for a worker whose preferred (consumer) node is
    /// `preferred`, first resolving the actual node through the placement
    /// policy, then reusing a pooled chunk when affinity allows, otherwise
    /// mapping a fresh one in the node's address band. The returned chunk is
    /// in [`SharedChunkState::Current`].
    ///
    /// With node affinity disabled (the ablation) the pool may hand back a
    /// chunk from *another* node; it keeps its true node — memory does not
    /// migrate — so subsequent promotions into it are accounted as remote.
    pub fn acquire(&self, preferred: NodeId) -> Arc<SharedChunk> {
        self.acquire_as(self.placement, preferred)
    }

    /// [`SharedGlobalHeap::acquire`] under an explicit effective policy
    /// (see [`SharedGlobalHeap::place_node_as`]).
    pub fn acquire_as(&self, effective: PlacementPolicy, preferred: NodeId) -> Arc<SharedChunk> {
        let node = self.place_node_as(effective, preferred);
        if let Some((id, _crossed)) = self.pool.pop(node) {
            let chunk = self.chunk_at(id.index());
            debug_assert_eq!(chunk.state(), SharedChunkState::Free);
            chunk.set_state(SharedChunkState::Current);
            self.chunks_in_use.fetch_add(1, Ordering::AcqRel);
            return chunk;
        }
        // Map a fresh chunk in `node`'s address band. The grow mutex
        // serialises id assignment and the two directory appends; readers
        // are never blocked (directories grow by appending segments, so
        // published entries stay valid throughout).
        let _grow = self.grow.lock().expect("grow lock poisoned");
        let on_node = &self.by_node[node.index()];
        let id = ChunkId(self.chunks.len() as u32);
        let index_on_node = on_node.len();
        let offset = (index_on_node as u64) * self.chunk_size_bytes() as u64;
        assert!(
            offset + self.chunk_size_bytes() as u64 <= self.node_span_bytes,
            "node {node} exhausted its {}-byte global-heap address band",
            self.node_span_bytes
        );
        let base = Addr::new(GLOBAL_BASE + (node.index() as u64) * self.node_span_bytes + offset);
        let chunk = Arc::new(SharedChunk::new(id, base, node, self.chunk_size_words));
        chunk.set_state(SharedChunkState::Current);
        self.chunks.push(chunk.clone());
        on_node.push(chunk.clone());
        self.chunks_created.fetch_add(1, Ordering::Relaxed);
        self.chunks_in_use.fetch_add(1, Ordering::AcqRel);
        chunk
    }

    /// Returns a chunk to the free pool, clearing its contents.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is already free.
    pub fn release(&self, chunk: &SharedChunk) {
        assert!(
            chunk.state() != SharedChunkState::Free,
            "{:?} released while already free",
            chunk.id()
        );
        chunk.reset();
        self.pool.push(chunk.node(), chunk.id());
        self.chunks_in_use.fetch_sub(1, Ordering::AcqRel);
    }

    /// A snapshot of one node's directory (address order).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn snapshot_node(&self, node: NodeId) -> Vec<Arc<SharedChunk>> {
        self.by_node[node.index()].to_vec()
    }

    /// A segment-sharing snapshot of one node's directory (what worker
    /// caches hold — refreshing clones segment `Arc`s, not chunk `Arc`s).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn snapshot_node_dir(&self, node: NodeId) -> DirectorySnapshot {
        self.by_node[node.index()].snapshot()
    }

    /// Number of chunks mapped in `node`'s address band.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn chunks_on_node(&self, node: NodeId) -> usize {
        self.by_node[node.index()].len()
    }
}

/// The fixed address-space layout of a threaded machine: pure arithmetic
/// replaces the simulation's shared [`AddressSpace`](crate::AddressSpace),
/// so classifying an address is lock-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadedLayout {
    num_vprocs: usize,
    num_nodes: usize,
    /// Words per local heap (also the per-worker address stride).
    local_words: usize,
    /// Words per global chunk.
    chunk_words: usize,
    /// log2 of the per-node global-heap address band (from
    /// [`HeapConfig::node_span_bytes`]).
    node_span_shift: u32,
}

/// Who owns an address under a [`ThreadedLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadedOwner {
    /// Inside vproc `0`'s..`n`'s local heap.
    Local(usize),
    /// Inside the global heap: chunk `index` of `node`'s address band (the
    /// index may exceed the number of chunks actually mapped; callers
    /// bound-check against the node directory).
    Global {
        /// The NUMA node whose band contains the address.
        node: usize,
        /// The chunk index within that node's band.
        index: usize,
    },
    /// Outside every region.
    Unmapped,
}

impl ThreadedLayout {
    /// Builds the layout for `num_vprocs` workers on a machine with
    /// `num_nodes` NUMA nodes under `config`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vprocs` or `num_nodes` is zero.
    pub fn new(config: &HeapConfig, num_vprocs: usize, num_nodes: usize) -> Self {
        assert!(num_vprocs > 0, "at least one vproc is required");
        assert!(num_nodes > 0, "a machine must have at least one node");
        let chunk_words = (config.chunk_size_bytes / WORD_BYTES).max(64);
        let local_words = (config.local_heap_bytes / WORD_BYTES).max(64);
        let span = (num_vprocs as u64) * (local_words * WORD_BYTES) as u64;
        assert!(
            LOCAL_BASE + span < GLOBAL_BASE,
            "local heaps would overlap the global heap base"
        );
        assert!(
            config.node_span_bytes.is_power_of_two(),
            "the node span must be a power of two (validate through HeapGeometry)"
        );
        assert!(
            config.node_span_bytes <= 1 << MAX_NODE_SPAN_SHIFT,
            "the node span exceeds the supported maximum band"
        );
        let node_span_shift = config.node_span_bytes.trailing_zeros();
        assert!(
            (chunk_words * WORD_BYTES) as u64 <= config.node_span_bytes,
            "a node's address band must fit at least one chunk"
        );
        ThreadedLayout {
            num_vprocs,
            num_nodes,
            local_words,
            chunk_words,
            node_span_shift,
        }
    }

    /// Number of vprocs in the layout.
    pub fn num_vprocs(&self) -> usize {
        self.num_vprocs
    }

    /// Number of NUMA nodes partitioning the global heap.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Words per local heap.
    pub fn local_words(&self) -> usize {
        self.local_words
    }

    /// Words per global chunk.
    pub fn chunk_words(&self) -> usize {
        self.chunk_words
    }

    /// log2 of the per-node global-heap address band.
    pub fn node_span_shift(&self) -> u32 {
        self.node_span_shift
    }

    /// Bytes of global-heap address band per node.
    pub fn node_span_bytes(&self) -> u64 {
        1 << self.node_span_shift
    }

    /// Base address of vproc `v`'s local heap.
    pub fn local_base(&self, vproc: usize) -> Addr {
        Addr::new(LOCAL_BASE + (vproc * self.local_words * WORD_BYTES) as u64)
    }

    /// Which region `addr` falls in, by pure arithmetic.
    pub fn owner_of(&self, addr: Addr) -> ThreadedOwner {
        let raw = addr.raw();
        if raw >= GLOBAL_BASE {
            let node = ((raw - GLOBAL_BASE) >> self.node_span_shift) as usize;
            if node >= self.num_nodes {
                return ThreadedOwner::Unmapped;
            }
            let offset = (raw - GLOBAL_BASE) & (self.node_span_bytes() - 1);
            let index = (offset as usize) / (self.chunk_words * WORD_BYTES);
            ThreadedOwner::Global { node, index }
        } else if raw >= LOCAL_BASE {
            let vproc = ((raw - LOCAL_BASE) as usize) / (self.local_words * WORD_BYTES);
            if vproc < self.num_vprocs {
                ThreadedOwner::Local(vproc)
            } else {
                ThreadedOwner::Unmapped
            }
        } else {
            ThreadedOwner::Unmapped
        }
    }
}

/// A worker thread's view of the heap: its own [`LocalHeap`] plus the shared
/// global heap. Implements [`GcHeap`], so the generic minor/major/promotion
/// algorithms of `mgc-core` run on it unchanged — with the crucial property
/// that the minor-collection path touches only owned state (no locks,
/// §3.3).
pub struct WorkerHeap {
    vproc: usize,
    layout: ThreadedLayout,
    local: LocalHeap,
    global: Arc<SharedGlobalHeap>,
    descriptors: Arc<DescriptorTable>,
    /// The worker's home node (where its local heap was placed).
    home_node: NodeId,
    /// The node the *consumer* of the next promotion lives on. Defaults to
    /// the home node; the runtime points it at the thief's node for the
    /// duration of a steal handoff (under `NodeLocal` placement), so
    /// promoted graphs land where they are about to be traversed.
    promotion_target: NodeId,
    /// The static policy this worker's chunk leases follow *right now*.
    /// Equals the heap's policy for static policies; under
    /// [`PlacementPolicy::Adaptive`] the runtime's controller retargets it
    /// between `NodeLocal` and `Interleave` as the locality ledger moves.
    effective_placement: PlacementPolicy,
    current: Option<Arc<SharedChunk>>,
    /// Thread-local shadow of the per-node chunk directories; a node's
    /// snapshot shares the directory's append-only segments (so it also
    /// resolves chunks published after it was taken, within known
    /// segments) and is refreshed only when an address points past it.
    cache: RefCell<Vec<DirectorySnapshot>>,
    stats: HeapStats,
}

impl std::fmt::Debug for WorkerHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerHeap")
            .field("vproc", &self.vproc)
            .field("node", &self.local.node())
            .field("promotion_target", &self.promotion_target)
            .field("current_chunk", &self.current.as_ref().map(|c| c.id()))
            .finish()
    }
}

impl WorkerHeap {
    /// Creates the heap view for worker `vproc`, whose local heap is placed
    /// on `node` (already resolved through the page-placement policy).
    /// Promotion chunks initially target the same node; the runtime may
    /// retarget them per steal handoff via
    /// [`WorkerHeap::set_promotion_target`].
    pub fn new(
        vproc: usize,
        layout: ThreadedLayout,
        node: NodeId,
        global: Arc<SharedGlobalHeap>,
        descriptors: Arc<DescriptorTable>,
    ) -> Self {
        let base = layout.local_base(vproc);
        let num_nodes = layout.num_nodes();
        // Adaptive controllers cold-start in node-local mode; static
        // policies are their own effective policy.
        let effective_placement = match global.placement() {
            PlacementPolicy::Adaptive => PlacementPolicy::NodeLocal,
            fixed => fixed,
        };
        WorkerHeap {
            vproc,
            layout,
            local: LocalHeap::new(vproc, node, base, layout.local_words()),
            global,
            descriptors,
            home_node: node,
            promotion_target: node,
            effective_placement,
            current: None,
            cache: RefCell::new(vec![DirectorySnapshot::default(); num_nodes]),
            stats: HeapStats::default(),
        }
    }

    /// The owning vproc.
    pub fn vproc(&self) -> usize {
        self.vproc
    }

    /// The worker's home NUMA node.
    pub fn home_node(&self) -> NodeId {
        self.home_node
    }

    /// The node the next promotion's consumer lives on (see
    /// [`WorkerHeap::set_promotion_target`]).
    pub fn promotion_target(&self) -> NodeId {
        self.promotion_target
    }

    /// Points subsequent promotions at `node`'s chunk pool (honoured by
    /// node-binding placement policies; `Interleave` ignores it). The
    /// runtime sets this to the thief's node around a steal handoff and
    /// restores it to the home node afterwards.
    pub fn set_promotion_target(&mut self, node: NodeId) {
        self.promotion_target = node;
    }

    /// The static policy this worker's leases currently follow (differs
    /// from the heap's policy only under [`PlacementPolicy::Adaptive`]).
    pub fn effective_placement(&self) -> PlacementPolicy {
        self.effective_placement
    }

    /// Retargets the worker's effective lease policy. Only meaningful when
    /// the heap's policy is [`PlacementPolicy::Adaptive`] — the runtime's
    /// controller calls this as the locality ledger moves; static policies
    /// never change.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `effective` is itself `Adaptive` — the controller
    /// must resolve a concrete mode.
    pub fn set_effective_placement(&mut self, effective: PlacementPolicy) {
        debug_assert!(
            effective != PlacementPolicy::Adaptive,
            "the adaptive controller resolves to a concrete static policy"
        );
        self.effective_placement = effective;
    }

    /// The shared global heap.
    pub fn shared_global(&self) -> &Arc<SharedGlobalHeap> {
        &self.global
    }

    /// The address layout.
    pub fn layout(&self) -> ThreadedLayout {
        self.layout
    }

    /// This worker's heap counters.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// The worker's current global chunk, if any.
    pub fn current_chunk(&self) -> Option<&Arc<SharedChunk>> {
        self.current.as_ref()
    }

    // ------------------------------------------------------------------
    // Mutator allocation (into the owned nursery; no synchronisation)
    // ------------------------------------------------------------------

    /// Allocates a raw-data object in the nursery.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NurseryFull`] when a minor collection is needed.
    pub fn alloc_raw(&mut self, payload: &[Word]) -> Result<Addr, HeapError> {
        let header = Header::new(ObjectKind::Raw, payload.len() as u64).encode();
        self.local.alloc(header, payload)
    }

    /// Allocates a pointer-vector object in the nursery.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NurseryFull`] when a minor collection is needed.
    pub fn alloc_vector(&mut self, elements: &[Word]) -> Result<Addr, HeapError> {
        let header = Header::new(ObjectKind::Vector, elements.len() as u64).encode();
        self.local.alloc(header, elements)
    }

    /// Allocates a mixed-type object in the nursery.
    ///
    /// # Errors
    ///
    /// Mirrors [`Heap::alloc_mixed`](crate::Heap::alloc_mixed).
    pub fn alloc_mixed(
        &mut self,
        descriptor: crate::DescriptorId,
        payload: &[Word],
    ) -> Result<Addr, HeapError> {
        let desc = self
            .descriptors
            .get(descriptor.id())
            .ok_or(HeapError::UnknownDescriptor {
                id: descriptor.id(),
            })?;
        if desc.size_words as usize != payload.len() {
            return Err(HeapError::PayloadSizeMismatch {
                expected: desc.size_words as usize,
                supplied: payload.len(),
            });
        }
        let header = Header::new(ObjectKind::Mixed(descriptor.id()), payload.len() as u64).encode();
        self.local.alloc(header, payload)
    }

    // ------------------------------------------------------------------
    // Global-chunk management
    // ------------------------------------------------------------------

    /// Retires the current chunk (it keeps its data, state becomes
    /// [`SharedChunkState::Filled`]).
    pub fn retire_current_chunk(&mut self) {
        if let Some(chunk) = self.current.take() {
            chunk.set_state(SharedChunkState::Filled);
        }
    }

    fn fresh_current_chunk(&mut self) -> Arc<SharedChunk> {
        self.retire_current_chunk();
        let chunk = self
            .global
            .acquire_as(self.effective_placement, self.promotion_target);
        self.stats.chunk_acquisitions += 1;
        self.current = Some(chunk.clone());
        chunk
    }

    /// True when the current chunk satisfies the promotion target under the
    /// worker's *effective* placement policy. `Interleave` never binds; and
    /// when the affinity ablation is on, the pool may legitimately hand
    /// back wrong-node chunks, so retiring them would only churn.
    fn current_chunk_matches_target(&self, chunk: &SharedChunk) -> bool {
        if !self.effective_placement.binds_node() || !self.global.pool().node_affinity() {
            return true;
        }
        chunk.node() == self.promotion_target
    }

    /// Allocates an object into the worker's current global chunk, acquiring
    /// a fresh chunk transparently when the current one fills up — or when
    /// the current chunk's node no longer matches the promotion target under
    /// a node-binding placement policy.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::ObjectTooLarge`] if the object cannot fit in any
    /// chunk.
    pub fn alloc_in_global(&mut self, header: Word, payload: &[Word]) -> Result<Addr, HeapError> {
        let total = payload.len() + 1;
        if total > self.global.chunk_size_words() {
            return Err(HeapError::ObjectTooLarge {
                requested_words: total,
                max_words: self.global.chunk_size_words(),
            });
        }
        let chunk = match &self.current {
            Some(chunk) if self.current_chunk_matches_target(chunk) => chunk.clone(),
            _ => self.fresh_current_chunk(),
        };
        match chunk.alloc(header, payload) {
            Ok(addr) => Ok(addr),
            Err(HeapError::ChunkFull { .. }) => self.fresh_current_chunk().alloc(header, payload),
            Err(e) => Err(e),
        }
    }

    /// The shared chunk containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a mapped global address.
    pub fn chunk_of(&self, addr: Addr) -> Arc<SharedChunk> {
        let ThreadedOwner::Global { node, index } = self.layout.owner_of(addr) else {
            panic!("{addr:?} is not a global-heap address");
        };
        {
            let cache = self.cache.borrow();
            if let Some(chunk) = cache[node].get(index) {
                return chunk.clone();
            }
        }
        self.refresh_cached_chunk(addr, node, index)
    }

    /// Cache miss: the node's directory grew a segment since we last looked.
    fn refresh_cached_chunk(&self, addr: Addr, node: usize, index: usize) -> Arc<SharedChunk> {
        let snapshot = self.global.snapshot_node_dir(NodeId::new(node as u16));
        let chunk = snapshot
            .get(index)
            .unwrap_or_else(|| {
                panic!("{addr:?} points past the end of node {node}'s global-heap band")
            })
            .clone();
        self.cache.borrow_mut()[node] = snapshot;
        chunk
    }

    /// Runs `f` against the shared chunk containing `addr` *without*
    /// cloning the `Arc` on the cache-hit path. Every global-heap field
    /// access lands here, and an `Arc` clone per word is two atomic RMWs on
    /// a refcount that every worker reading the chunk shares — under real
    /// parallelism that cache line ping-pongs between cores and serialises
    /// exactly the reads the global heap exists to make shareable.
    fn with_chunk<R>(&self, addr: Addr, f: impl FnOnce(&SharedChunk) -> R) -> R {
        let ThreadedOwner::Global { node, index } = self.layout.owner_of(addr) else {
            panic!("{addr:?} is not a global-heap address");
        };
        {
            let cache = self.cache.borrow();
            if let Some(chunk) = cache[node].get(index) {
                return f(chunk);
            }
        }
        f(&self.refresh_cached_chunk(addr, node, index))
    }

    fn read_word(&self, addr: Addr) -> Word {
        match self.layout.owner_of(addr) {
            ThreadedOwner::Local(v) => {
                assert_eq!(
                    v, self.vproc,
                    "worker {} read from vproc {v}'s local heap — the no-cross-heap-pointer \
                     invariant was violated",
                    self.vproc
                );
                self.local.read(self.local.offset_of(addr))
            }
            ThreadedOwner::Global { .. } => {
                self.with_chunk(addr, |chunk| chunk.read(chunk.offset_of(addr)))
            }
            ThreadedOwner::Unmapped => panic!("read from unmapped address {addr:?}"),
        }
    }

    fn write_word(&mut self, addr: Addr, value: Word) {
        match self.layout.owner_of(addr) {
            ThreadedOwner::Local(v) => {
                assert_eq!(
                    v, self.vproc,
                    "worker {} wrote to vproc {v}'s local heap — the no-cross-heap-pointer \
                     invariant was violated",
                    self.vproc
                );
                let offset = self.local.offset_of(addr);
                self.local.write(offset, value);
            }
            ThreadedOwner::Global { .. } => {
                self.with_chunk(addr, |chunk| chunk.write(chunk.offset_of(addr), value));
            }
            ThreadedOwner::Unmapped => panic!("write to unmapped address {addr:?}"),
        }
    }

    /// Installs a forwarding pointer over a *local* object's header (global
    /// from-space objects go through [`WorkerHeap::cas_forward_global`]).
    fn set_forward_local(&mut self, obj: Addr, target: Addr) {
        debug_assert!(!target.is_null());
        self.write_word(obj.sub_words(1), target.raw());
    }

    /// Race-safe forwarding for the parallel global collection: tries to
    /// install `new_addr` over the from-space object at `obj`.
    ///
    /// # Errors
    ///
    /// Returns the winning address when another worker forwarded first.
    pub fn cas_forward_global(
        &self,
        obj: Addr,
        expected_header: Word,
        new_addr: Addr,
    ) -> Result<(), Addr> {
        let chunk = self.chunk_of(obj);
        chunk.try_forward(obj, expected_header, new_addr)
    }
}

impl GcHeap for WorkerHeap {
    fn num_vprocs(&self) -> usize {
        self.layout.num_vprocs()
    }

    fn local(&self, vproc: usize) -> &LocalHeap {
        assert_eq!(vproc, self.vproc, "a worker heap only serves its own vproc");
        &self.local
    }

    fn local_mut(&mut self, vproc: usize) -> &mut LocalHeap {
        assert_eq!(vproc, self.vproc, "a worker heap only serves its own vproc");
        &mut self.local
    }

    fn space_of(&self, addr: Addr) -> Space {
        match self.layout.owner_of(addr) {
            ThreadedOwner::Unmapped => Space::Unmapped,
            // The flat ChunkId requires a directory lookup; the hot-path
            // classifications (`is_local`/`is_global`/`node_of`) stay pure
            // arithmetic via the overrides below.
            ThreadedOwner::Global { .. } => Space::Global {
                chunk: self.chunk_of(addr).id(),
            },
            ThreadedOwner::Local(v) if v == self.vproc => match self.local.region_of(addr) {
                LocalRegion::Old => Space::LocalOld { vproc: v },
                LocalRegion::Young => Space::LocalYoung { vproc: v },
                LocalRegion::Nursery => Space::LocalNursery { vproc: v },
                LocalRegion::Reserve | LocalRegion::NurseryFree => Space::LocalFree { vproc: v },
            },
            // Another worker's local heap: we may classify it (pure
            // arithmetic) but never read it. The collector only needs the
            // owner to decide "not mine — leave the pointer alone".
            ThreadedOwner::Local(v) => Space::LocalOld { vproc: v },
        }
    }

    fn is_local(&self, addr: Addr) -> bool {
        matches!(self.layout.owner_of(addr), ThreadedOwner::Local(_))
    }

    fn is_global(&self, addr: Addr) -> bool {
        matches!(self.layout.owner_of(addr), ThreadedOwner::Global { .. })
    }

    fn node_of(&self, addr: Addr) -> NodeId {
        match self.layout.owner_of(addr) {
            ThreadedOwner::Local(v) if v == self.vproc => self.local.node(),
            ThreadedOwner::Local(_) => self.home_node,
            // Arithmetic: the node is baked into the address band.
            ThreadedOwner::Global { node, .. } => NodeId::new(node as u16),
            ThreadedOwner::Unmapped => panic!("{addr:?} is not mapped to any heap region"),
        }
    }

    fn header_slot(&self, obj: Addr) -> HeaderSlot {
        HeaderSlot::decode(self.read_word(obj.sub_words(1)))
    }

    fn read_field(&self, obj: Addr, index: usize) -> Word {
        self.read_word(obj.add_words(index))
    }

    fn write_field(&mut self, obj: Addr, index: usize, value: Word) {
        self.write_word(obj.add_words(index), value);
    }

    // Bulk payload reads resolve the containing region once and stream the
    // words out, instead of paying the owner classification (and, for
    // global objects, the chunk lookup) on every word. Rope leaves are read
    // this way on the workloads' hot paths.
    fn payload(&self, obj: Addr) -> Vec<Word> {
        match self.layout.owner_of(obj) {
            ThreadedOwner::Local(v) => {
                assert_eq!(
                    v, self.vproc,
                    "worker {} read from vproc {v}'s local heap — the no-cross-heap-pointer \
                     invariant was violated",
                    self.vproc
                );
                let base = self.local.offset_of(obj);
                let header = HeaderSlot::decode(self.local.read(base - 1)).expect_header();
                (0..header.len_words as usize)
                    .map(|i| self.local.read(base + i))
                    .collect()
            }
            ThreadedOwner::Global { .. } => self.with_chunk(obj, |chunk| {
                let base = chunk.offset_of(obj);
                let header = HeaderSlot::decode(chunk.read(base - 1)).expect_header();
                (0..header.len_words as usize)
                    .map(|i| chunk.read(base + i))
                    .collect()
            }),
            ThreadedOwner::Unmapped => panic!("read from unmapped address {obj:?}"),
        }
    }

    fn pointer_field_indices(&self, header: Header) -> Result<Vec<usize>, HeapError> {
        match header.kind {
            ObjectKind::Raw => Ok(Vec::new()),
            ObjectKind::Vector => Ok((0..header.len_words as usize).collect()),
            ObjectKind::Mixed(id) => {
                let descriptor = self
                    .descriptors
                    .get(id)
                    .ok_or(HeapError::UnknownDescriptor { id })?;
                Ok(descriptor.pointer_offsets().collect())
            }
        }
    }

    fn evacuate(&mut self, obj: Addr, target: EvacTarget) -> Result<(Addr, usize), HeapError> {
        let header = self.header_of(obj);
        let payload = self.payload(obj);
        let encoded = header.encode();
        let new_addr = match target {
            EvacTarget::OldArea { vproc } => {
                assert_eq!(
                    vproc, self.vproc,
                    "a worker only evacuates into its own heap"
                );
                self.local.alloc_in_old(encoded, &payload)?
            }
            EvacTarget::GlobalCurrent { vproc } => {
                assert_eq!(
                    vproc, self.vproc,
                    "a worker only fills its own current chunk"
                );
                self.alloc_in_global(encoded, &payload)?
            }
            EvacTarget::Chunk(chunk) => panic!(
                "threaded evacuation into a specific chunk ({chunk:?}) goes through the \
                 parallel global collection, not the generic path"
            ),
        };
        // The original must be in this worker's local heap (minor/major
        // collections and promotions only move owned objects; contended
        // global evacuation uses `cas_forward_global`).
        self.set_forward_local(obj, new_addr);
        // Preserve the header in the first payload word of the dead copy so
        // linear walks of the local heap can still skip it.
        if header.len_words >= 1 {
            self.write_field(obj, 0, encoded);
        }
        self.stats.evacuated_words += header.total_words() as u64;
        Ok((new_addr, header.total_bytes()))
    }

    fn chunk_acquisitions(&self) -> u64 {
        self.stats.chunk_acquisitions
    }

    fn global_bytes_in_use(&self) -> usize {
        self.global.bytes_in_use()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ThreadedLayout, Arc<SharedGlobalHeap>, Arc<DescriptorTable>) {
        let config = HeapConfig::small_for_tests();
        let layout = ThreadedLayout::new(&config, 2, 2);
        let global = Arc::new(SharedGlobalHeap::new(layout.chunk_words(), 2));
        (layout, global, Arc::new(DescriptorTable::new()))
    }

    fn worker(
        vproc: usize,
        layout: ThreadedLayout,
        global: &Arc<SharedGlobalHeap>,
        descriptors: &Arc<DescriptorTable>,
    ) -> WorkerHeap {
        WorkerHeap::new(
            vproc,
            layout,
            NodeId::new(vproc as u16 % 2),
            global.clone(),
            descriptors.clone(),
        )
    }

    #[test]
    fn layout_classifies_addresses_arithmetically() {
        let (layout, _, _) = setup();
        let local0 = layout.local_base(0);
        let local1 = layout.local_base(1);
        assert_eq!(layout.owner_of(local0), ThreadedOwner::Local(0));
        assert_eq!(layout.owner_of(local1), ThreadedOwner::Local(1));
        assert_eq!(layout.owner_of(Addr::new(8)), ThreadedOwner::Unmapped);
        assert_eq!(
            layout.owner_of(Addr::new(GLOBAL_BASE)),
            ThreadedOwner::Global { node: 0, index: 0 }
        );
        let second_chunk = Addr::new(GLOBAL_BASE + (layout.chunk_words() * WORD_BYTES) as u64);
        assert_eq!(
            layout.owner_of(second_chunk),
            ThreadedOwner::Global { node: 0, index: 1 }
        );
        // Node 1's band starts one NODE_SPAN above the base.
        let node1 = Addr::new(GLOBAL_BASE + NODE_SPAN_BYTES);
        assert_eq!(
            layout.owner_of(node1),
            ThreadedOwner::Global { node: 1, index: 0 }
        );
        assert_eq!(global_node_of(node1), Some(NodeId::new(1)));
        assert_eq!(global_node_of(Addr::new(GLOBAL_BASE)), Some(NodeId::new(0)));
        assert_eq!(global_node_of(local0), None);
        // A band past the machine's node count is unmapped.
        let beyond = Addr::new(GLOBAL_BASE + 2 * NODE_SPAN_BYTES);
        assert_eq!(layout.owner_of(beyond), ThreadedOwner::Unmapped);
    }

    #[test]
    fn worker_allocates_locally_without_touching_shared_state() {
        let (layout, global, descriptors) = setup();
        let mut w = worker(0, layout, &global, &descriptors);
        let obj = w.alloc_raw(&[1, 2, 3]).unwrap();
        assert_eq!(w.space_of(obj), Space::LocalNursery { vproc: 0 });
        assert_eq!(GcHeap::payload(&w, obj), vec![1, 2, 3]);
        assert_eq!(global.num_chunks(), 0);
    }

    #[test]
    fn global_allocation_and_cross_worker_reads() {
        let (layout, global, descriptors) = setup();
        let mut w0 = worker(0, layout, &global, &descriptors);
        let w1 = worker(1, layout, &global, &descriptors);
        let header = Header::new(ObjectKind::Raw, 2).encode();
        let addr = w0.alloc_in_global(header, &[7, 8]).unwrap();
        // The other worker reads the published object through its own view.
        assert_eq!(GcHeap::payload(&w1, addr), vec![7, 8]);
        assert!(GcHeap::is_global(&w1, addr));
        assert_eq!(global.chunks_in_use(), 1);
        assert_eq!(w0.stats().chunk_acquisitions, 1);
    }

    #[test]
    fn chunk_rollover_acquires_fresh_chunks() {
        let (layout, global, descriptors) = setup();
        let mut w = worker(0, layout, &global, &descriptors);
        let words = global.chunk_size_words();
        let big = vec![0u64; words - 2];
        let header = Header::new(ObjectKind::Raw, big.len() as u64).encode();
        w.alloc_in_global(header, &big).unwrap();
        let first = w.current_chunk().unwrap().id();
        let header2 = Header::new(ObjectKind::Raw, 4).encode();
        w.alloc_in_global(header2, &[1, 2, 3, 4]).unwrap();
        let second = w.current_chunk().unwrap().id();
        assert_ne!(first, second);
        assert_eq!(
            global.chunk_at(first.index()).state(),
            SharedChunkState::Filled
        );
    }

    #[test]
    fn release_returns_chunks_to_the_node_pool() {
        let (layout, global, descriptors) = setup();
        let mut w = worker(1, layout, &global, &descriptors);
        let header = Header::new(ObjectKind::Raw, 1).encode();
        w.alloc_in_global(header, &[9]).unwrap();
        let chunk = w.current_chunk().unwrap().clone();
        w.retire_current_chunk();
        global.release(&chunk);
        assert_eq!(global.chunks_in_use(), 0);
        assert_eq!(global.pool().free_chunks_on(chunk.node()), 1);
        // Reacquiring from the same node reuses it.
        let again = global.acquire(chunk.node());
        assert_eq!(again.id(), chunk.id());
        assert_eq!(again.used_words(), 0, "released chunks are reset");
    }

    #[test]
    fn affinity_disabled_reuses_remote_chunks_without_migrating_them() {
        let (_, global, _) = setup();
        global.pool().set_node_affinity(false);
        let chunk = global.acquire(NodeId::new(1));
        assert_eq!(chunk.node(), NodeId::new(1));
        global.release(&chunk);
        // Cross-node reuse hands the chunk over, but the memory stays where
        // it is: the chunk keeps its true node (its address band), so
        // promotions into it are accounted as remote.
        let again = global.acquire(NodeId::new(0));
        assert_eq!(again.id(), chunk.id());
        assert_eq!(again.node(), NodeId::new(1));
        assert_eq!(global_node_of(again.base()), Some(NodeId::new(1)));
        assert_eq!(global.pool().reused_remote(), 1);
    }

    #[test]
    fn interleave_placement_round_robins_chunk_nodes() {
        let config = HeapConfig::small_for_tests();
        let layout = ThreadedLayout::new(&config, 1, 2);
        let global = Arc::new(
            SharedGlobalHeap::new(layout.chunk_words(), 2)
                .with_placement(PlacementPolicy::Interleave),
        );
        // All requests prefer node 0, but the leases alternate nodes.
        let nodes: Vec<u16> = (0..4)
            .map(|_| global.acquire(NodeId::new(0)).node().raw())
            .collect();
        assert_eq!(nodes, vec![0, 1, 0, 1]);
    }

    #[test]
    fn node_binding_placement_retargets_the_current_chunk() {
        let (layout, global, descriptors) = setup();
        let mut w = worker(0, layout, &global, &descriptors);
        let header = Header::new(ObjectKind::Raw, 1).encode();
        let home = w.alloc_in_global(header, &[1]).unwrap();
        assert_eq!(global_node_of(home), Some(NodeId::new(0)));
        // Retarget promotions at node 1 (as a steal handoff to a node-1
        // thief does): the current node-0 chunk is set aside and the next
        // allocation lands in node 1's band.
        w.set_promotion_target(NodeId::new(1));
        let away = w.alloc_in_global(header, &[2]).unwrap();
        assert_eq!(global_node_of(away), Some(NodeId::new(1)));
        // Back home: allocations return to node 0.
        w.set_promotion_target(NodeId::new(0));
        let back = w.alloc_in_global(header, &[3]).unwrap();
        assert_eq!(global_node_of(back), Some(NodeId::new(0)));
    }

    #[test]
    fn cas_forward_races_have_one_winner() {
        let (layout, global, descriptors) = setup();
        let mut w0 = worker(0, layout, &global, &descriptors);
        let header = Header::new(ObjectKind::Raw, 1);
        let obj = w0.alloc_in_global(header.encode(), &[5]).unwrap();
        let copy_a = Addr::new(GLOBAL_BASE + 1024 * 1024);
        let copy_b = Addr::new(GLOBAL_BASE + 2 * 1024 * 1024);
        assert!(w0.cas_forward_global(obj, header.encode(), copy_a).is_ok());
        assert_eq!(
            w0.cas_forward_global(obj, header.encode(), copy_b),
            Err(copy_a)
        );
        assert_eq!(GcHeap::forwarded_to(&w0, obj), Some(copy_a));
    }

    #[test]
    fn directory_grows_by_segments_and_snapshots_see_later_entries() {
        let config = HeapConfig::small_for_tests();
        let layout = ThreadedLayout::new(&config, 1, 1);
        let global = Arc::new(SharedGlobalHeap::new(layout.chunk_words(), 1));
        // Take a snapshot while the directory is empty, then grow past one
        // segment boundary.
        let early = global.snapshot_node_dir(NodeId::new(0));
        assert!(early.get(0).is_none());
        let total = DIR_SEG_CHUNKS + 3;
        let chunks: Vec<_> = (0..total).map(|_| global.acquire(NodeId::new(0))).collect();
        assert_eq!(global.num_chunks(), total);
        assert_eq!(global.chunks_on_node(NodeId::new(0)), total);
        // A fresh snapshot resolves every entry; entries keep address order.
        let snap = global.snapshot_node_dir(NodeId::new(0));
        for (i, chunk) in chunks.iter().enumerate() {
            assert_eq!(snap.get(i).unwrap().id(), chunk.id());
        }
        assert!(snap.get(total).is_none());
        // The append-only segments mean the *old* snapshot still can't see
        // anything (it held no segments), but a mid-growth snapshot sees
        // entries published later into segments it already holds.
        let mid = global.snapshot_node_dir(NodeId::new(0));
        let more = global.acquire(NodeId::new(0));
        assert_eq!(mid.get(total).unwrap().id(), more.id());
        // The flat directory agrees.
        assert_eq!(global.snapshot().len(), total + 1);
    }

    #[test]
    fn concurrent_grow_while_promoting_keeps_every_chunk_distinct() {
        use std::collections::HashSet;
        use std::sync::atomic::AtomicBool;
        // Hammer the Treiber free stacks and the directory append path at
        // once: half the acquisitions recycle released chunks, half map
        // fresh ones, racing across two nodes and one segment boundary.
        let config = HeapConfig::small_for_tests();
        let layout = ThreadedLayout::new(&config, 4, 2);
        let global = Arc::new(SharedGlobalHeap::new(layout.chunk_words(), 2));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|n| {
                // Concurrent directory readers: resolve every published
                // index while the appends race.
                let global = global.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let node = NodeId::new(n as u16);
                        let len = global.chunks_on_node(node);
                        let snap = global.snapshot_node_dir(node);
                        for i in 0..len {
                            assert_eq!(snap.get(i).unwrap().node(), node);
                        }
                    }
                })
            })
            .collect();
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let global = global.clone();
                std::thread::spawn(move || {
                    let node = NodeId::new((w % 2) as u16);
                    let mut held = Vec::new();
                    let mut seen = Vec::new();
                    for round in 0..300 {
                        let chunk = global.acquire(node);
                        assert_eq!(chunk.node(), node, "affinity-on leases stay node-local");
                        seen.push(chunk.id());
                        held.push(chunk);
                        // Release every other round so the pool path and the
                        // fresh-map path interleave.
                        if round % 2 == 0 {
                            let chunk = held.remove(0);
                            global.release(&chunk);
                        }
                    }
                    (held, seen)
                })
            })
            .collect();
        let mut in_use = Vec::new();
        for w in workers {
            let (held, seen) = w.join().unwrap();
            assert_eq!(seen.len(), 300);
            in_use.extend(held.into_iter().map(|c| c.id()));
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            r.join().unwrap();
        }
        // No two workers ever held the same chunk simultaneously.
        let distinct: HashSet<_> = in_use.iter().copied().collect();
        assert_eq!(distinct.len(), in_use.len(), "a chunk was double-leased");
        assert_eq!(global.chunks_in_use(), in_use.len());
        // Every chunk the directory knows is exactly once in it.
        let all = global.snapshot();
        let ids: HashSet<_> = all.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), all.len());
        assert_eq!(global.num_chunks(), all.len());
    }

    #[test]
    fn custom_node_span_places_bands_at_the_configured_stride() {
        let span: u64 = 1 << 20;
        let config = HeapConfig {
            node_span_bytes: span,
            ..HeapConfig::small_for_tests()
        };
        let layout = ThreadedLayout::new(&config, 1, 2);
        assert_eq!(layout.node_span_bytes(), span);
        let global =
            Arc::new(SharedGlobalHeap::new(layout.chunk_words(), 2).with_node_span_bytes(span));
        let c0 = global.acquire(NodeId::new(0));
        let c1 = global.acquire(NodeId::new(1));
        assert_eq!(c0.base().raw(), GLOBAL_BASE);
        assert_eq!(c1.base().raw(), GLOBAL_BASE + span);
        // The layout's arithmetic agrees with the heap's band math.
        assert_eq!(
            layout.owner_of(c1.base()),
            ThreadedOwner::Global { node: 1, index: 0 }
        );
        // And the smaller band actually exhausts: a 1 MiB band holds 256
        // four-KiB chunks.
        let per_band = (span / global.chunk_size_bytes() as u64) as usize;
        assert_eq!(per_band, 256);
    }

    #[test]
    #[should_panic(expected = "exhausted its")]
    fn exhausting_a_small_band_panics_clearly() {
        let span: u64 = 8 * 1024;
        let config = HeapConfig {
            node_span_bytes: span,
            ..HeapConfig::small_for_tests()
        };
        let layout = ThreadedLayout::new(&config, 1, 1);
        let global = SharedGlobalHeap::new(layout.chunk_words(), 1).with_node_span_bytes(span);
        // Two 4 KiB chunks fit; the third must fail loudly.
        let _a = global.acquire(NodeId::new(0));
        let _b = global.acquire(NodeId::new(0));
        let _c = global.acquire(NodeId::new(0));
    }

    /// GB-scale geometry smoke: only runs under `MGC_SCALE=bench` (it maps
    /// a quarter-GiB of chunk *payload*, which is too slow for the tier-1
    /// suite). Exercises the segmented directory well past many segment
    /// boundaries with a realistic 256 KiB chunk size.
    #[test]
    fn gb_geometry_smoke_maps_a_quarter_gib_band() {
        if std::env::var("MGC_SCALE").as_deref() != Ok("bench") {
            return;
        }
        let chunk_bytes: usize = 256 * 1024;
        let span: u64 = 1 << 30;
        let config = HeapConfig {
            chunk_size_bytes: chunk_bytes,
            node_span_bytes: span,
            ..HeapConfig::small_for_tests()
        };
        let layout = ThreadedLayout::new(&config, 1, 1);
        let global = SharedGlobalHeap::new(layout.chunk_words(), 1).with_node_span_bytes(span);
        // 1024 chunks × 256 KiB = 256 MiB mapped, crossing two segment
        // boundaries; the last chunk sits just under the 1 GiB band edge.
        let n = 1024;
        let mut last = None;
        for _ in 0..n {
            last = Some(global.acquire(NodeId::new(0)));
        }
        let last = last.unwrap();
        assert_eq!(global.num_chunks(), n);
        assert_eq!(
            last.base().raw(),
            GLOBAL_BASE + ((n - 1) * chunk_bytes) as u64
        );
        assert_eq!(
            layout.owner_of(last.base()),
            ThreadedOwner::Global {
                node: 0,
                index: n - 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "no-cross-heap-pointer")]
    fn foreign_local_reads_fail_fast() {
        let (layout, global, descriptors) = setup();
        let mut w0 = worker(0, layout, &global, &descriptors);
        let w1 = worker(1, layout, &global, &descriptors);
        let obj = w0.alloc_raw(&[1]).unwrap();
        let _ = GcHeap::read_field(&w1, obj, 0);
    }
}
