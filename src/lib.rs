//! Umbrella crate for the reproduction of *Garbage Collection for Multicore
//! NUMA Machines* (Auhagen, Bergstrom, Fluet, Reppy; 2011).
//!
//! The implementation is split into focused crates, re-exported here:
//!
//! * [`numa`] — machine topologies (the paper's AMD and Intel machines),
//!   page-placement policies, and the bottleneck memory cost model;
//! * [`heap`] — the object model (header word, descriptor table), Appel-style
//!   local heaps, and the chunked global heap with node affinity;
//! * [`gc`] — the collector itself: minor, major, promotion, and the global
//!   stop-the-world parallel collection;
//! * [`runtime`] — vprocs, fork/join work stealing with lazy promotion,
//!   CML-style channels, and the discrete-event machine driver;
//! * [`workloads`] — the paper's five benchmarks plus a synthetic
//!   allocation-churn workload.
//!
//! See `README.md` for a tour of the crates, build/test instructions, and
//! the workflow for regenerating the paper's tables and figures.
//!
//! # Example
//!
//! ```
//! use manticore_gc::numa::{AllocPolicy, Topology};
//! use manticore_gc::workloads::{Scale, Workload};
//!
//! let record = Workload::Raytracer
//!     .experiment(Scale::tiny())
//!     .topology(Topology::intel_xeon_32())
//!     .vprocs(4)
//!     .policy(AllocPolicy::Local)
//!     .run()
//!     .expect("four vprocs fit the 32-core machine");
//! assert!(record.report.elapsed_ns > 0.0);
//! assert_eq!(record.checksum_ok, Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mgc_core as gc;
pub use mgc_heap as heap;
pub use mgc_numa as numa;
pub use mgc_runtime as runtime;
pub use mgc_workloads as workloads;
