//! Workspace-level integration tests: the full stack (topology → heap →
//! collector → runtime → workloads) exercised together, plus the qualitative
//! properties the paper's evaluation rests on. Every run goes through the
//! `Experiment` front door.

use manticore_gc::gc::GcConfig;
use manticore_gc::heap::HeapConfig;
use manticore_gc::numa::{AllocPolicy, Topology};
use manticore_gc::runtime::{Experiment, Machine, Program};
use manticore_gc::workloads::{churn, dmm, smvm, Scale, Workload};

#[test]
fn all_collection_kinds_fire_and_results_stay_correct() {
    // A DMM run on a machine with tiny heaps: minor, major, and global
    // collections all trigger, and the numeric result is still exactly the
    // sequential reference. The experiment is validated first and the
    // machine built from its resolved config, so the heap stays accessible
    // for post-run verification.
    let scale = Scale::tiny();
    let program = dmm::Dmm::at_scale(scale);
    let config = Experiment::new(program)
        .topology(Topology::dual_node_test())
        .vprocs(4)
        .heap(HeapConfig::small_for_tests())
        .gc(GcConfig::small_for_tests())
        .quantum_ns(50_000.0)
        .validate()
        .expect("four vprocs fit the dual-node test topology");
    let mut machine = Machine::new(config.machine.clone());
    program.spawn(&mut machine);
    let report = machine.run();
    let checksum = dmm::take_checksum(&mut machine).expect("dmm produces a checksum");
    let reference = dmm::reference_checksum(scale);
    assert!((checksum - reference).abs() < 1e-6 * reference.abs().max(1.0));
    assert!(report.gc.minor_collections > 0);
    assert!(manticore_gc::heap::verify_heap(machine.heap()).is_empty());
}

#[test]
fn figure5_shape_abundant_parallelism_scales_better_than_shared_data() {
    // The central qualitative claim of Figure 5: benchmarks with abundant
    // parallelism and local data (Barnes-Hut's force phase here, at the tiny
    // test scale) scale much better than SMVM, whose small shared dataset
    // limits it.
    let topology = Topology::amd_magny_cours_48();
    let scale = Scale::tiny();
    let time = |workload: Workload, threads: usize| {
        workload
            .experiment(scale)
            .topology(topology.clone())
            .vprocs(threads)
            .policy(AllocPolicy::Local)
            .verify_checksum(false)
            .run()
            .expect("the thread counts fit the 48-core machine")
            .report
            .elapsed_ns
    };
    let speedup = |workload: Workload| time(workload, 1) / time(workload, 24);
    let bh_speedup = speedup(Workload::BarnesHut);
    let smvm_speedup = speedup(Workload::Smvm);
    assert!(
        bh_speedup > smvm_speedup,
        "Barnes-Hut ({bh_speedup:.2}x) should out-scale SMVM ({smvm_speedup:.2}x) at 24 threads"
    );
    assert!(
        bh_speedup > 3.0,
        "Barnes-Hut should scale well, got {bh_speedup:.2}x"
    );
}

/// Runs the churn benchmark with its **default** (paper-like) parameters —
/// through the public params-aware API, which the old `Workload::spawn`
/// entry point kept unreachable.
fn churn_time(topology: &Topology, threads: usize, policy: AllocPolicy) -> f64 {
    Experiment::new(churn::Churn::new(churn::ChurnParams::default()))
        .topology(topology.clone())
        .vprocs(threads)
        .policy(policy)
        .run()
        .expect("the thread counts fit the 48-core machine")
        .report
        .elapsed_ns
}

#[test]
fn figure7_shape_socket_zero_collapses_at_scale() {
    // Figure 5 vs Figure 7: with every page on node 0, adding threads beyond
    // ~12 stops helping much; with local allocation it keeps helping.
    let topology = Topology::amd_magny_cours_48();
    let local_48 = churn_time(&topology, 48, AllocPolicy::Local);
    let socket0_48 = churn_time(&topology, 48, AllocPolicy::SocketZero);
    assert!(
        socket0_48 > local_48,
        "socket-zero at 48 threads ({socket0_48:.0} ns) must be slower than local ({local_48:.0} ns)"
    );
}

#[test]
fn interleaved_beats_socket_zero_under_contention() {
    // §4.3: spreading pages across the nodes beats concentrating everything
    // on node 0 once many threads are allocating and collecting at once.
    let topology = Topology::amd_magny_cours_48();
    let interleaved = churn_time(&topology, 36, AllocPolicy::Interleaved);
    let socket0 = churn_time(&topology, 36, AllocPolicy::SocketZero);
    assert!(
        interleaved < socket0,
        "interleaved ({interleaved:.0}) should beat socket-zero ({socket0:.0}) for churn at 36 threads"
    );
}

#[test]
fn churn_survivors_survive_on_the_paper_machines() {
    for topology in [Topology::amd_magny_cours_48(), Topology::intel_xeon_32()] {
        let params = churn::ChurnParams::small();
        let record = Experiment::new(churn::Churn::new(params))
            .topology(topology)
            .vprocs(6)
            .quantum_ns(200_000.0)
            .run()
            .expect("six vprocs fit both paper machines");
        // `Churn` declares its expected survivor word-sum as the program
        // checksum, so the experiment checks it for us.
        assert_eq!(record.checksum_ok, Some(true));
        assert_eq!(
            record.result.map(|(word, _)| word as i64),
            Some(churn::expected_checksum_value(params))
        );
    }
}

#[test]
fn smvm_checksum_is_policy_independent() {
    // Placement affects time, never results.
    let topology = Topology::amd_magny_cours_48();
    let scale = Scale::tiny();
    let mut checksums = Vec::new();
    for policy in [
        AllocPolicy::Local,
        AllocPolicy::Interleaved,
        AllocPolicy::SocketZero,
    ] {
        let record = Workload::Smvm
            .experiment(scale)
            .topology(topology.clone())
            .vprocs(8)
            .policy(policy)
            .quantum_ns(200_000.0)
            .run()
            .expect("eight vprocs fit the 48-core machine");
        assert_eq!(record.checksum_ok, Some(true), "{policy}");
        let (word, _) = record.result.expect("smvm checksum");
        checksums.push(manticore_gc::heap::word_to_f64(word));
    }
    assert!((checksums[0] - smvm::reference_checksum(scale)).abs() < 1e-6);
    assert!(checksums.iter().all(|&c| (c - checksums[0]).abs() < 1e-9));
}
