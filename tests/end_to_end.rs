//! Workspace-level integration tests: the full stack (topology → heap →
//! collector → runtime → workloads) exercised together, plus the qualitative
//! properties the paper's evaluation rests on.

use manticore_gc::gc::GcConfig;
use manticore_gc::heap::HeapConfig;
use manticore_gc::numa::{AllocPolicy, Topology};
use manticore_gc::runtime::{Machine, MachineConfig};
use manticore_gc::workloads::{churn, dmm, run_workload, smvm, Scale, Workload};

#[test]
fn all_collection_kinds_fire_and_results_stay_correct() {
    // A DMM run on a machine with tiny heaps: minor, major, and global
    // collections all trigger, and the numeric result is still exactly the
    // sequential reference.
    let scale = Scale::tiny();
    let mut config = MachineConfig::new(Topology::dual_node_test(), 4)
        .with_heap(HeapConfig::small_for_tests())
        .with_gc(GcConfig::small_for_tests());
    config.quantum_ns = 50_000.0;
    let mut machine = Machine::new(config);
    dmm::spawn(&mut machine, scale);
    let report = machine.run();
    let checksum = dmm::take_checksum(&mut machine).expect("dmm produces a checksum");
    let reference = dmm::reference_checksum(scale);
    assert!((checksum - reference).abs() < 1e-6 * reference.abs().max(1.0));
    assert!(report.gc.minor_collections > 0);
    assert!(manticore_gc::heap::verify_heap(machine.heap()).is_empty());
}

#[test]
fn figure5_shape_abundant_parallelism_scales_better_than_shared_data() {
    // The central qualitative claim of Figure 5: benchmarks with abundant
    // parallelism and local data (Barnes-Hut's force phase here, at the tiny
    // test scale) scale much better than SMVM, whose small shared dataset
    // limits it.
    let topology = Topology::amd_magny_cours_48();
    let scale = Scale::tiny();
    let speedup = |workload: Workload| {
        let t1 = run_workload(&topology, 1, AllocPolicy::Local, workload, scale).elapsed_ns;
        let t24 = run_workload(&topology, 24, AllocPolicy::Local, workload, scale).elapsed_ns;
        t1 / t24
    };
    let bh_speedup = speedup(Workload::BarnesHut);
    let smvm_speedup = speedup(Workload::Smvm);
    assert!(
        bh_speedup > smvm_speedup,
        "Barnes-Hut ({bh_speedup:.2}x) should out-scale SMVM ({smvm_speedup:.2}x) at 24 threads"
    );
    assert!(
        bh_speedup > 3.0,
        "Barnes-Hut should scale well, got {bh_speedup:.2}x"
    );
}

#[test]
fn figure7_shape_socket_zero_collapses_at_scale() {
    // Figure 5 vs Figure 7: with every page on node 0, adding threads beyond
    // ~12 stops helping much; with local allocation it keeps helping.
    let topology = Topology::amd_magny_cours_48();
    let scale = Scale::tiny();
    let time = |threads: usize, policy: AllocPolicy| {
        run_workload(&topology, threads, policy, Workload::Churn, scale).elapsed_ns
    };
    let local_48 = time(48, AllocPolicy::Local);
    let socket0_48 = time(48, AllocPolicy::SocketZero);
    assert!(
        socket0_48 > local_48,
        "socket-zero at 48 threads ({socket0_48:.0} ns) must be slower than local ({local_48:.0} ns)"
    );
}

#[test]
fn interleaved_beats_socket_zero_under_contention() {
    // §4.3: spreading pages across the nodes beats concentrating everything
    // on node 0 once many threads are allocating and collecting at once.
    let topology = Topology::amd_magny_cours_48();
    let scale = Scale::tiny();
    let interleaved = run_workload(
        &topology,
        36,
        AllocPolicy::Interleaved,
        Workload::Churn,
        scale,
    )
    .elapsed_ns;
    let socket0 = run_workload(
        &topology,
        36,
        AllocPolicy::SocketZero,
        Workload::Churn,
        scale,
    )
    .elapsed_ns;
    assert!(
        interleaved < socket0,
        "interleaved ({interleaved:.0}) should beat socket-zero ({socket0:.0}) for churn at 36 threads"
    );
}

#[test]
fn churn_survivors_survive_on_the_paper_machines() {
    for topology in [Topology::amd_magny_cours_48(), Topology::intel_xeon_32()] {
        let params = churn::ChurnParams::small();
        let mut machine = Machine::new(MachineConfig::new(topology, 6));
        churn::spawn(&mut machine, params);
        machine.run();
        assert_eq!(
            churn::take_survivors(&mut machine),
            Some(churn::expected_survivors(params))
        );
    }
}

#[test]
fn smvm_checksum_is_policy_independent() {
    // Placement affects time, never results.
    let topology = Topology::amd_magny_cours_48();
    let scale = Scale::tiny();
    let mut checksums = Vec::new();
    for policy in [
        AllocPolicy::Local,
        AllocPolicy::Interleaved,
        AllocPolicy::SocketZero,
    ] {
        let mut machine = Machine::new(MachineConfig::new(topology.clone(), 8).with_policy(policy));
        smvm::spawn(&mut machine, scale);
        machine.run();
        checksums.push(smvm::take_checksum(&mut machine).expect("smvm checksum"));
    }
    assert!((checksums[0] - smvm::reference_checksum(scale)).abs() < 1e-6);
    assert!(checksums.iter().all(|&c| (c - checksums[0]).abs() < 1e-9));
}
