//! Property-based tests over the collector: randomly generated object graphs
//! and collection schedules must never lose or corrupt reachable data, and
//! must never violate the heap invariants.

use manticore_gc::gc::{Collector, GcConfig};
use manticore_gc::heap::{verify_heap, Addr, Heap, HeapConfig};
use manticore_gc::numa::NodeId;
use proptest::prelude::*;
use std::collections::HashMap;

/// A script step for the property tests.
#[derive(Debug, Clone)]
enum Step {
    /// Allocate a raw object with this payload seed and keep it as a root.
    AllocKeep(u8, u8),
    /// Allocate a vector referencing up to two existing roots.
    AllocVector(u8, u8),
    /// Drop one root (making its object garbage unless referenced elsewhere).
    DropRoot(u8),
    /// Run a minor collection.
    Minor,
    /// Run a minor followed by a major collection.
    Major,
    /// Promote one root's object graph.
    Promote(u8),
    /// Run a global collection.
    Global,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::AllocKeep(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::AllocVector(a, b)),
        any::<u8>().prop_map(Step::DropRoot),
        Just(Step::Minor),
        Just(Step::Major),
        any::<u8>().prop_map(Step::Promote),
        Just(Step::Global),
    ]
}

/// Recursively reads the logical contents of an object so we can compare
/// before/after collections. Raw objects yield their payload; vectors yield
/// the contents of their referents.
fn snapshot(heap: &Heap, addr: Addr, depth: usize) -> Vec<u64> {
    if depth > 6 || addr.is_null() {
        return vec![];
    }
    let addr = follow(heap, addr);
    let header = heap.header_of(addr);
    match header.kind {
        manticore_gc::heap::ObjectKind::Raw => heap.payload(addr),
        _ => {
            let mut out = vec![0xFEED];
            for i in 0..header.len_words as usize {
                let word = heap.read_field(addr, i);
                if word == 0 {
                    out.push(0);
                } else {
                    out.extend(snapshot(heap, Addr::new(word), depth + 1));
                }
            }
            out
        }
    }
}

fn follow(heap: &Heap, mut addr: Addr) -> Addr {
    while let Some(f) = heap.forwarded_to(addr) {
        addr = f;
    }
    addr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_schedules_never_lose_reachable_data(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        let mut heap = Heap::new(HeapConfig::small_for_tests(), &[NodeId::new(0), NodeId::new(1)], 2);
        let mut collector = Collector::new(GcConfig::small_for_tests(), 2, 2);
        let mut roots: Vec<Addr> = Vec::new();
        let mut counter = 0u64;

        for step in steps {
            match step {
                Step::AllocKeep(seed, len) => {
                    let len = (len % 12 + 1) as usize;
                    counter += 1;
                    let payload: Vec<u64> = (0..len as u64).map(|i| u64::from(seed) * 1000 + counter * 100 + i).collect();
                    if let Ok(obj) = heap.alloc_raw(0, &payload) {
                        roots.push(obj);
                    } else {
                        let outcome = collector.collect_local(&mut heap, 0, &mut roots);
                        prop_assert!(outcome.cost.cpu_ns > 0.0);
                        roots.push(heap.alloc_raw(0, &payload).expect("post-collection allocation succeeds"));
                    }
                }
                Step::AllocVector(a, b) => {
                    if roots.is_empty() { continue; }
                    let x = roots[a as usize % roots.len()];
                    let y = roots[b as usize % roots.len()];
                    match heap.alloc_vector(0, &[x.raw(), y.raw()]) {
                        Ok(v) => roots.push(v),
                        Err(_) => {
                            let _ = collector.collect_local(&mut heap, 0, &mut roots);
                            // Re-resolve the referents after the collection.
                            let x = follow(&heap, roots[a as usize % roots.len()]);
                            let y = follow(&heap, roots[b as usize % roots.len()]);
                            roots.push(heap.alloc_vector(0, &[x.raw(), y.raw()]).expect("post-collection allocation succeeds"));
                        }
                    }
                }
                Step::DropRoot(i) => {
                    if !roots.is_empty() {
                        let index = i as usize % roots.len();
                        roots.remove(index);
                    }
                }
                Step::Minor => { collector.minor(&mut heap, 0, &mut roots); }
                Step::Major => {
                    collector.minor(&mut heap, 0, &mut roots);
                    collector.major(&mut heap, 0, &mut roots);
                }
                Step::Promote(i) => {
                    if !roots.is_empty() {
                        let index = i as usize % roots.len();
                        let (new, _) = collector.promote(&mut heap, 0, roots[index]);
                        roots[index] = new;
                    }
                }
                Step::Global => {
                    let mut per_vproc = vec![roots.clone(), Vec::new()];
                    collector.global(&mut heap, &mut per_vproc);
                    roots = per_vproc.swap_remove(0);
                }
            }

            // Invariants hold after every step.
            prop_assert!(verify_heap(&heap).is_empty());
        }

        // Snapshot every root, run the heaviest collection pipeline, and
        // check the logical contents are unchanged.
        let before: HashMap<usize, Vec<u64>> = roots.iter().enumerate()
            .map(|(i, &r)| (i, snapshot(&heap, r, 0)))
            .collect();
        collector.collect_local(&mut heap, 0, &mut roots);
        let mut per_vproc = vec![roots.clone(), Vec::new()];
        collector.global(&mut heap, &mut per_vproc);
        roots = per_vproc.swap_remove(0);
        for (i, &root) in roots.iter().enumerate() {
            prop_assert_eq!(&before[&i], &snapshot(&heap, root, 0), "root {} changed contents", i);
        }
        prop_assert!(verify_heap(&heap).is_empty());
    }

    #[test]
    fn header_round_trips(id in 1u16..0x7FFF, len in 0u64..(1 << 48)) {
        use manticore_gc::heap::{Header, ObjectKind};
        let header = Header::new(ObjectKind::from_id(id), len);
        let decoded = Header::decode(header.encode()).expect("headers decode");
        prop_assert_eq!(decoded, header);
    }

    #[test]
    fn placement_policies_always_return_valid_nodes(
        policy_index in 0usize..4,
        requests in proptest::collection::vec(0u16..8, 1..64),
    ) {
        use manticore_gc::numa::{AllocPolicy, PagePlacer};
        let policy = AllocPolicy::ALL[policy_index];
        let placer = PagePlacer::new(policy, 8);
        for r in requests {
            let node = placer.place(manticore_gc::numa::NodeId::new(r));
            prop_assert!(node.index() < 8);
        }
    }
}
